#include "graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/union_find.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

namespace {

NodeId grid_node(NodeId width, NodeId row, NodeId col) {
  return row * width + col;
}

}  // namespace

Graph make_grid(NodeId width, NodeId height) {
  LCS_CHECK(width >= 1 && height >= 1, "grid dimensions must be positive");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      if (c + 1 < width)
        edges.push_back({grid_node(width, r, c), grid_node(width, r, c + 1), 1});
      if (r + 1 < height)
        edges.push_back({grid_node(width, r, c), grid_node(width, r + 1, c), 1});
    }
  }
  return Graph(width * height, std::move(edges));
}

Graph make_torus(NodeId width, NodeId height) {
  LCS_CHECK(width >= 3 && height >= 3, "torus needs width, height >= 3");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      edges.push_back(
          {grid_node(width, r, c), grid_node(width, r, (c + 1) % width), 1});
      edges.push_back(
          {grid_node(width, r, c), grid_node(width, (r + 1) % height, c), 1});
    }
  }
  return Graph(width * height, std::move(edges));
}

Graph make_genus_grid(NodeId width, NodeId height, int genus,
                      std::uint64_t seed) {
  LCS_CHECK(genus >= 0, "genus must be non-negative");
  Graph base = make_grid(width, height);
  const NodeId n = base.num_nodes();
  LCS_CHECK(n >= 4 || genus == 0, "graph too small to add chords");

  std::set<std::pair<NodeId, NodeId>> present;
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(base.num_edges()) + genus);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto& ed = base.edge(e);
    present.emplace(ed.u, ed.v);
    edges.push_back(ed);
  }

  Rng rng(seed);
  int added = 0;
  int attempts = 0;
  while (added < genus) {
    LCS_CHECK(++attempts < 1000 * (genus + 1),
              "could not place requested number of chords");
    NodeId a = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!present.emplace(a, b).second) continue;
    edges.push_back({a, b, 1});
    ++added;
  }
  return Graph(n, std::move(edges));
}

Graph make_path(NodeId n) {
  LCS_CHECK(n >= 1, "path needs at least one node");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  return Graph(n, std::move(edges));
}

Graph make_cycle(NodeId n) {
  LCS_CHECK(n >= 3, "cycle needs at least three nodes");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
  return Graph(n, std::move(edges));
}

Graph make_random_tree(NodeId n, std::uint64_t seed) {
  LCS_CHECK(n >= 1, "tree needs at least one node");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    edges.push_back({parent, v, 1});
  }
  return Graph(n, std::move(edges));
}

Graph make_random_maze(NodeId width, NodeId height, double keep_fraction,
                       std::uint64_t seed) {
  LCS_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in [0, 1]");
  Graph grid = make_grid(width, height);
  Rng rng(seed);

  // Random spanning tree via randomized Kruskal over shuffled grid edges.
  std::vector<EdgeId> order(static_cast<std::size_t>(grid.num_edges()));
  for (EdgeId e = 0; e < grid.num_edges(); ++e)
    order[static_cast<std::size_t>(e)] = e;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  UnionFind uf(static_cast<std::size_t>(grid.num_nodes()));
  std::vector<bool> in_tree(static_cast<std::size_t>(grid.num_edges()), false);
  for (EdgeId e : order) {
    const auto& ed = grid.edge(e);
    if (uf.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v)))
      in_tree[static_cast<std::size_t>(e)] = true;
  }

  std::vector<Graph::Edge> edges;
  for (EdgeId e = 0; e < grid.num_edges(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)] || rng.next_bool(keep_fraction))
      edges.push_back(grid.edge(e));
  }
  return Graph(grid.num_nodes(), std::move(edges));
}

Graph make_erdos_renyi(NodeId n, double p, std::uint64_t seed) {
  LCS_CHECK(n >= 1, "graph needs at least one node");
  LCS_CHECK(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> present;
  std::vector<Graph::Edge> edges;

  // Random spanning tree first so the result is always connected.
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    present.emplace(std::min(parent, v), std::max(parent, v));
    edges.push_back({parent, v, 1});
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!rng.next_bool(p)) continue;
      if (present.contains({u, v})) continue;
      present.emplace(u, v);
      edges.push_back({u, v, 1});
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_wheel(NodeId n) {
  LCS_CHECK(n >= 4, "wheel needs at least four nodes");
  const NodeId hub = n - 1;
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % (n - 1)), 1});
    edges.push_back({v, hub, 1});
  }
  return Graph(n, std::move(edges));
}

NodeId lower_bound_path_node(NodeId path_len, NodeId path, NodeId column) {
  return path * path_len + column;
}

Graph make_lower_bound_graph(NodeId num_paths, NodeId path_len) {
  LCS_CHECK(num_paths >= 1 && path_len >= 2,
            "need at least one path of length >= 2");
  std::vector<Graph::Edge> edges;

  // Path edges.
  for (NodeId i = 0; i < num_paths; ++i)
    for (NodeId j = 0; j + 1 < path_len; ++j)
      edges.push_back({lower_bound_path_node(path_len, i, j),
                       lower_bound_path_node(path_len, i, j + 1), 1});

  // Balanced binary tree over the columns. Level 0 = one tree leaf per
  // column; each subsequent level pairs up consecutive nodes.
  NodeId next = num_paths * path_len;
  std::vector<NodeId> level(static_cast<std::size_t>(path_len));
  for (NodeId j = 0; j < path_len; ++j) {
    level[static_cast<std::size_t>(j)] = next++;
    // Spokes: the leaf for column j attaches to column j of every path.
    for (NodeId i = 0; i < num_paths; ++i)
      edges.push_back({level[static_cast<std::size_t>(j)],
                       lower_bound_path_node(path_len, i, j), 1});
  }
  while (level.size() > 1) {
    std::vector<NodeId> parents;
    parents.reserve(level.size() / 2 + 1);
    for (std::size_t k = 0; k < level.size(); k += 2) {
      if (k + 1 < level.size()) {
        const NodeId parent = next++;
        edges.push_back({parent, level[k], 1});
        edges.push_back({parent, level[k + 1], 1});
        parents.push_back(parent);
      } else {
        parents.push_back(level[k]);  // odd node promotes unchanged
      }
    }
    level = std::move(parents);
  }

  return Graph(next, std::move(edges));
}

Graph with_random_weights(const Graph& g, Weight lo, Weight hi,
                          std::uint64_t seed) {
  LCS_CHECK(lo <= hi, "weight range is empty");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    Graph::Edge ed = g.edge(e);
    ed.w = lo + rng.next_below(hi - lo + 1);
    edges.push_back(ed);
  }
  return Graph(g.num_nodes(), std::move(edges));
}

}  // namespace lcs
