#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/pair_hash_set.h"
#include "graph/union_find.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

namespace {

NodeId grid_node(NodeId width, NodeId row, NodeId col) {
  return row * width + col;
}

/// Diagnose node/edge counts that overflow the dense 32-bit id space before
/// any arithmetic wraps (every generator precondition is an LCS_CHECK,
/// never UB).
NodeId checked_node_count(std::int64_t n, const char* what) {
  LCS_CHECK(n <= std::numeric_limits<NodeId>::max(),
            std::string(what) + " count overflows the 32-bit id space");
  return util::checked_cast<NodeId>(n);
}

}  // namespace

Graph make_grid(NodeId width, NodeId height) {
  LCS_CHECK(width >= 1 && height >= 1, "grid dimensions must be positive");
  checked_node_count(static_cast<std::int64_t>(width) * height, "grid node");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      if (c + 1 < width)
        edges.push_back({grid_node(width, r, c), grid_node(width, r, c + 1), 1});
      if (r + 1 < height)
        edges.push_back({grid_node(width, r, c), grid_node(width, r + 1, c), 1});
    }
  }
  return Graph(width * height, std::move(edges));
}

Graph make_torus(NodeId width, NodeId height) {
  LCS_CHECK(width >= 3 && height >= 3, "torus needs width, height >= 3");
  checked_node_count(static_cast<std::int64_t>(width) * height, "torus node");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      edges.push_back(
          {grid_node(width, r, c), grid_node(width, r, (c + 1) % width), 1});
      edges.push_back(
          {grid_node(width, r, c), grid_node(width, (r + 1) % height, c), 1});
    }
  }
  return Graph(width * height, std::move(edges));
}

Graph make_genus_grid(NodeId width, NodeId height, int genus,
                      std::uint64_t seed) {
  LCS_CHECK(genus >= 0, "genus must be non-negative");
  Graph base = make_grid(width, height);
  const NodeId n = base.num_nodes();
  LCS_CHECK(n >= 4 || genus == 0, "graph too small to add chords");

  PairHashSet present(static_cast<std::size_t>(base.num_edges()) + genus);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(base.num_edges()) + genus);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto& ed = base.edge(e);
    present.insert(ed.u, ed.v);
    edges.push_back(ed);
  }

  Rng rng(seed);
  int added = 0;
  int attempts = 0;
  while (added < genus) {
    LCS_CHECK(++attempts < 1000 * (genus + 1),
              "could not place requested number of chords");
    NodeId a = util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId b = util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    if (!present.insert(a, b)) continue;
    edges.push_back({std::min(a, b), std::max(a, b), 1});
    ++added;
  }
  return Graph(n, std::move(edges));
}

Graph make_path(NodeId n) {
  LCS_CHECK(n >= 1, "path needs at least one node");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  return Graph(n, std::move(edges));
}

Graph make_cycle(NodeId n) {
  LCS_CHECK(n >= 3, "cycle needs at least three nodes");
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
  return Graph(n, std::move(edges));
}

Graph make_random_tree(NodeId n, std::uint64_t seed) {
  LCS_CHECK(n >= 1, "tree needs at least one node");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    edges.push_back({parent, v, 1});
  }
  return Graph(n, std::move(edges));
}

Graph make_random_maze(NodeId width, NodeId height, double keep_fraction,
                       std::uint64_t seed) {
  LCS_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in [0, 1]");
  Graph grid = make_grid(width, height);
  Rng rng(seed);

  // Random spanning tree via randomized Kruskal over shuffled grid edges.
  std::vector<EdgeId> order(static_cast<std::size_t>(grid.num_edges()));
  for (EdgeId e = 0; e < grid.num_edges(); ++e)
    order[static_cast<std::size_t>(e)] = e;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  UnionFind uf(static_cast<std::size_t>(grid.num_nodes()));
  std::vector<bool> in_tree(static_cast<std::size_t>(grid.num_edges()), false);
  for (EdgeId e : order) {
    const auto& ed = grid.edge(e);
    if (uf.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v)))
      in_tree[static_cast<std::size_t>(e)] = true;
  }

  std::vector<Graph::Edge> edges;
  for (EdgeId e = 0; e < grid.num_edges(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)] || rng.next_bool(keep_fraction))
      edges.push_back(grid.edge(e));
  }
  return Graph(grid.num_nodes(), std::move(edges));
}

Graph make_erdos_renyi(NodeId n, double p, std::uint64_t seed) {
  LCS_CHECK(n >= 1, "graph needs at least one node");
  LCS_CHECK(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
  const double expected_m =
      static_cast<double>(n - 1) + p * static_cast<double>(total_pairs);
  // 4 sigma above the expectation covers every realizable edge count at the
  // scales that fit in memory; beyond that the dense 32-bit id space is the
  // binding limit, diagnosed here instead of wrapping downstream.
  LCS_CHECK(expected_m + 4.0 * std::sqrt(expected_m + 1.0) + 16.0 <
                static_cast<double>(std::numeric_limits<EdgeId>::max()),
            "erdos-renyi expected edge count overflows the 32-bit id space");

  Rng rng(seed);
  PairHashSet present(static_cast<std::size_t>(expected_m) + 16);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(expected_m) + 16);

  // Random spanning tree first so the result is always connected.
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    present.insert(parent, v);
    edges.push_back({parent, v, 1});
  }

  // G(n, p) proper: a geometric-skip sweep over the C(n, 2) pair slots in
  // lexicographic order — (0,1), (0,2), ..., (n-2,n-1). Each GeometricSkip
  // draw jumps straight to the next successful slot, so the sweep performs
  // ~p * C(n, 2) draws total instead of one Bernoulli per pair: O(m) time.
  // The cursor (u, v) advances incrementally (rows step forward at most n
  // times over the whole sweep), keeping the slot -> pair decode exact
  // integer arithmetic. p = 1 degenerates to skip = 1 everywhere (complete
  // graph), p = 0 to an immediate kNever (spanning tree only).
  const GeometricSkip skip(p);
  std::uint64_t pos = 0;        // slots consumed so far
  NodeId u = 0;
  std::uint64_t v = 0;          // v == u means "before row u's first slot"
  for (;;) {
    const std::uint64_t s = skip.next(rng);
    if (s > total_pairs - pos) break;  // also covers s == kNever
    pos += s;
    v += s;
    while (v > static_cast<std::uint64_t>(n) - 1) {
      ++u;
      v = static_cast<std::uint64_t>(u) + (v - (static_cast<std::uint64_t>(n) - 1));
    }
    const NodeId w = util::checked_cast<NodeId>(v);
    if (present.insert(u, w)) edges.push_back({u, w, 1});
  }
  return Graph(n, std::move(edges));
}

Graph make_rmat(int scale, EdgeId edges_target, double a, double b, double c,
                std::uint64_t seed) {
  LCS_CHECK(scale >= 1 && scale <= 30, "rmat scale must be in [1, 30]");
  LCS_CHECK(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
            "rmat quadrant probabilities must be non-negative with a+b+c <= 1");
  const NodeId n = util::checked_cast<NodeId>(NodeId{1} << scale);
  LCS_CHECK(edges_target >= n - 1,
            "rmat edge target below the n - 1 connectivity floor");
  LCS_CHECK(static_cast<std::int64_t>(edges_target) <=
                static_cast<std::int64_t>(n) * (n - 1) / 2,
            "rmat edge target exceeds the simple-graph maximum");

  Rng rng(seed);
  PairHashSet present(static_cast<std::size_t>(edges_target));
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(edges_target));

  // Random spanning tree first so the result is always connected (same
  // policy as make_erdos_renyi).
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent =
        util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    present.insert(parent, v);
    edges.push_back({parent, v, 1});
  }

  const double ab = a + b;
  const double abc = a + b + c;
  std::int64_t attempts = 0;
  while (edges.size() < static_cast<std::size_t>(edges_target)) {
    LCS_CHECK(++attempts < 100 * static_cast<std::int64_t>(edges_target) + 1000,
              "rmat rejection sampling failed to reach the edge target "
              "(graph too dense for the chosen probabilities)");
    NodeId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      const int ub = r < ab ? 0 : 1;
      const int vb = (r < a || (r >= ab && r < abc)) ? 0 : 1;
      u = util::checked_cast<NodeId>((u << 1) | ub);
      v = util::checked_cast<NodeId>((v << 1) | vb);
    }
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!present.insert(u, v)) continue;
    edges.push_back({u, v, 1});
  }
  return Graph(n, std::move(edges));
}

Graph make_barabasi_albert(NodeId n, NodeId m, std::uint64_t seed) {
  LCS_CHECK(m >= 1 && m < n, "barabasi-albert needs 1 <= m < n");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  // Every edge endpoint appended once: sampling an index uniformly is
  // degree-proportional preferential attachment.
  std::vector<NodeId> chances;

  // Seed clique on m + 1 nodes: every seed node starts with degree m.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      edges.push_back({u, v, 1});
      chances.push_back(u);
      chances.push_back(v);
    }
  }

  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(m));
  for (NodeId v = m + 1; v < n; ++v) {
    targets.clear();
    std::int64_t attempts = 0;
    while (targets.size() < static_cast<std::size_t>(m)) {
      LCS_CHECK(++attempts < 1000 * static_cast<std::int64_t>(m) + 1000,
                "barabasi-albert target sampling failed to find m distinct "
                "attachment nodes");
      const NodeId t = chances[rng.next_below(chances.size())];
      if (std::find(targets.begin(), targets.end(), t) != targets.end())
        continue;
      targets.push_back(t);
    }
    for (const NodeId t : targets) {
      edges.push_back({t, v, 1});
      chances.push_back(t);
      chances.push_back(v);
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_random_regular(NodeId n, NodeId d, std::uint64_t seed) {
  LCS_CHECK(d >= 2 && d < n, "random regular graph needs 2 <= d < n");
  LCS_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0,
            "random regular graph needs n * d even");
  Rng rng(seed);
  constexpr int kMaxAttempts = 100;
  PairHashSet present(static_cast<std::size_t>(n) * d / 2);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    present.clear();
    std::vector<Graph::Edge> edges;
    edges.reserve(static_cast<std::size_t>(n) * d / 2);
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v)
      for (NodeId i = 0; i < d; ++i) stubs.push_back(v);

    // Repeated random matching over the remaining stubs: conflicted pairs
    // (self-loop or duplicate edge) go back into the pool, which shrinks
    // every pass unless *no* pair matched — then the residual is
    // unmatchable and we restart from scratch.
    bool stuck = false;
    while (!stubs.empty()) {
      for (std::size_t i = stubs.size(); i > 1; --i)
        std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
      std::vector<NodeId> leftover;
      for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        NodeId u = stubs[i], v = stubs[i + 1];
        if (u > v) std::swap(u, v);
        if (u == v || !present.insert(u, v)) {
          leftover.push_back(stubs[i]);
          leftover.push_back(stubs[i + 1]);
          continue;
        }
        edges.push_back({u, v, 1});
      }
      if (leftover.size() == stubs.size()) {
        stuck = true;
        break;
      }
      stubs = std::move(leftover);
    }
    if (stuck) continue;
    Graph g(n, std::move(edges));
    // d-regular random graphs are connected w.h.p. for d >= 3; d = 2 gives
    // disjoint cycles fairly often, hence the retry loop.
    if (is_connected(g)) return g;
  }
  LCS_CHECK(false, "could not realize a connected simple d-regular graph "
                   "after " + std::to_string(kMaxAttempts) + " attempts");
  __builtin_unreachable();
}

Graph make_ktree(NodeId n, NodeId k, std::uint64_t seed) {
  LCS_CHECK(k >= 1 && n >= k + 1, "k-tree needs k >= 1 and n >= k + 1");
  checked_node_count(
      static_cast<std::int64_t>(k) * (k + 1) / 2 +
          static_cast<std::int64_t>(n - k - 1) * k,
      "k-tree edge");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(k) * (k + 1) / 2 +
                static_cast<std::size_t>(n - k - 1) * k);

  // Flat store of k-cliques, k node ids per clique.
  std::vector<NodeId> cliques;
  const auto clique_count = [&] { return cliques.size() / static_cast<std::size_t>(k); };

  // Base (k+1)-clique on nodes 0..k; its k-subsets seed the clique store.
  for (NodeId u = 0; u <= k; ++u)
    for (NodeId v = u + 1; v <= k; ++v) edges.push_back({u, v, 1});
  for (NodeId excluded = 0; excluded <= k; ++excluded)
    for (NodeId u = 0; u <= k; ++u)
      if (u != excluded) cliques.push_back(u);

  std::vector<NodeId> chosen(static_cast<std::size_t>(k));
  for (NodeId v = k + 1; v < n; ++v) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(clique_count())));
    std::copy_n(cliques.begin() + static_cast<std::ptrdiff_t>(pick * k), k,
                chosen.begin());
    for (const NodeId u : chosen) edges.push_back({u, v, 1});
    // New k-cliques containing v: replace each member of the chosen clique
    // with v in turn.
    for (NodeId replaced = 0; replaced < k; ++replaced) {
      for (NodeId i = 0; i < k; ++i)
        cliques.push_back(i == replaced ? v
                                        : chosen[static_cast<std::size_t>(i)]);
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_wheel(NodeId n) {
  LCS_CHECK(n >= 4, "wheel needs at least four nodes");
  const NodeId hub = n - 1;
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, util::checked_cast<NodeId>((v + 1) % (n - 1)), 1});
    edges.push_back({v, hub, 1});
  }
  return Graph(n, std::move(edges));
}

NodeId lower_bound_path_node(NodeId path_len, NodeId path, NodeId column) {
  return path * path_len + column;
}

Graph make_lower_bound_graph(NodeId num_paths, NodeId path_len) {
  LCS_CHECK(num_paths >= 1 && path_len >= 2,
            "need at least one path of length >= 2");
  // Paths + tree leaves + at most path_len - 1 internal tree nodes.
  checked_node_count(static_cast<std::int64_t>(num_paths) * path_len +
                         2 * static_cast<std::int64_t>(path_len) - 1,
                     "lower-bound graph node");
  std::vector<Graph::Edge> edges;

  // Path edges.
  for (NodeId i = 0; i < num_paths; ++i)
    for (NodeId j = 0; j + 1 < path_len; ++j)
      edges.push_back({lower_bound_path_node(path_len, i, j),
                       lower_bound_path_node(path_len, i, j + 1), 1});

  // Balanced binary tree over the columns. Level 0 = one tree leaf per
  // column; each subsequent level pairs up consecutive nodes.
  NodeId next = num_paths * path_len;
  std::vector<NodeId> level(static_cast<std::size_t>(path_len));
  for (NodeId j = 0; j < path_len; ++j) {
    level[static_cast<std::size_t>(j)] = next++;
    // Spokes: the leaf for column j attaches to column j of every path.
    for (NodeId i = 0; i < num_paths; ++i)
      edges.push_back({level[static_cast<std::size_t>(j)],
                       lower_bound_path_node(path_len, i, j), 1});
  }
  while (level.size() > 1) {
    std::vector<NodeId> parents;
    parents.reserve(level.size() / 2 + 1);
    for (std::size_t k = 0; k < level.size(); k += 2) {
      if (k + 1 < level.size()) {
        const NodeId parent = next++;
        edges.push_back({parent, level[k], 1});
        edges.push_back({parent, level[k + 1], 1});
        parents.push_back(parent);
      } else {
        parents.push_back(level[k]);  // odd node promotes unchanged
      }
    }
    level = std::move(parents);
  }

  return Graph(next, std::move(edges));
}

Graph with_random_weights(const Graph& g, Weight lo, Weight hi,
                          std::uint64_t seed) {
  LCS_CHECK(lo <= hi, "weight range is empty");
  LCS_CHECK(hi - lo < std::numeric_limits<Weight>::max(),
            "weight range [lo, hi] must span fewer than 2^64 values");
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    Graph::Edge ed = g.edge(e);
    ed.w = lo + rng.next_below(hi - lo + 1);
    edges.push_back(ed);
  }
  return Graph(g.num_nodes(), std::move(edges));
}

}  // namespace lcs
