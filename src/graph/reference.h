/// \file reference.h
/// Centralized reference algorithms used to validate distributed results.
///
/// The distributed algorithms never call these; tests and benches use them
/// as ground truth (paper-vs-measured comparisons are meaningless without a
/// trusted oracle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace lcs {

struct MstResult {
  Weight total_weight = 0;
  /// Sorted edge ids of the MST. Under the (weight, edge id) order the MST
  /// is unique, so distributed results can be compared exactly.
  std::vector<EdgeId> edges;
};

/// Kruskal with lexicographic (weight, edge id) comparison.
/// Requires `g` connected.
MstResult kruskal_mst(const Graph& g);

/// Component label per node considering only edges with `edge_alive[e]`.
/// Labels are the minimum node id in the component (stable across runs).
std::vector<NodeId> connected_components(const Graph& g,
                                         const std::vector<bool>& edge_alive);

/// Component labels over all edges.
std::vector<NodeId> connected_components(const Graph& g);

/// Exact global minimum cut weight (Stoer–Wagner). O(n³); intended for
/// graphs with n up to a few hundred nodes, as a test oracle.
/// Requires `g` connected and n >= 2.
Weight stoer_wagner_mincut(const Graph& g);

}  // namespace lcs
