/// \file bfs_tree.h
/// Distributed BFS-tree construction — the standard O(D)-round CONGEST
/// subroutine the paper builds on ("Computing a BFS tree T ... is a standard
/// subroutine and can be computed in O(D) rounds", Section 5.2).
///
/// Protocol: the root floods EXPLORE; on its first EXPLORE a node adopts the
/// sender as parent, replies ACCEPT, and rejects later explorers. Echo
/// termination: a node reports DONE to its parent once every neighbor it
/// explored has replied and every accepting child has reported DONE, so the
/// phase quiesces after O(D) rounds with every node knowing its parent,
/// depth, children, and its neighbors' depths.
#pragma once

#include "congest/network.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Run the distributed BFS protocol rooted at `root` on `net`'s topology.
/// Rounds are accounted in `net`. The returned tree is assembled from the
/// per-node protocol outputs and passes `validate_spanning_tree`.
/// Requires the graph to be connected.
SpanningTree build_bfs_tree(congest::Network& net, NodeId root);

}  // namespace lcs
