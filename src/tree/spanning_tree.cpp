#include "tree/spanning_tree.h"

#include <algorithm>
#include <deque>

#include "graph/graph.h"
#include "util/check.h"

namespace lcs {

void SpanningTree::finalize(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  LCS_CHECK(parent_edge.size() == n && parent.size() == n &&
                depth.size() == n && children_edges.size() == n,
            "per-node fields incomplete");
  tree_edge_flags_.assign(static_cast<std::size_t>(g.num_edges()), false);
  edge_lower_.assign(static_cast<std::size_t>(g.num_edges()), kNoNode);
  height = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    height = std::max(height, depth[static_cast<std::size_t>(v)]);
    const EdgeId pe = parent_edge[static_cast<std::size_t>(v)];
    if (pe != kNoEdge) {
      tree_edge_flags_[static_cast<std::size_t>(pe)] = true;
      edge_lower_[static_cast<std::size_t>(pe)] = v;
    }
  }
}

void validate_spanning_tree(const Graph& g, const SpanningTree& tree) {
  const NodeId n = g.num_nodes();
  LCS_CHECK(tree.num_nodes() == n, "tree size mismatch");
  LCS_CHECK(tree.root >= 0 && tree.root < n, "invalid root");
  LCS_CHECK(tree.parent[static_cast<std::size_t>(tree.root)] == kNoNode &&
                tree.parent_edge[static_cast<std::size_t>(tree.root)] ==
                    kNoEdge &&
                tree.depth[static_cast<std::size_t>(tree.root)] == 0,
            "root must have no parent and depth 0");

  std::size_t tree_edge_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    const NodeId pv = tree.parent[static_cast<std::size_t>(v)];
    LCS_CHECK(pe != kNoEdge && pv != kNoNode, "non-root node without parent");
    LCS_CHECK(g.other_endpoint(pe, v) == pv, "parent edge/node mismatch");
    LCS_CHECK(tree.depth[static_cast<std::size_t>(v)] ==
                  tree.depth[static_cast<std::size_t>(pv)] + 1,
              "depth must be parent depth + 1");
    ++tree_edge_count;
  }
  LCS_CHECK(tree_edge_count == static_cast<std::size_t>(n) - 1 || n == 0,
            "wrong number of tree edges");

  // Children lists match parents exactly.
  std::size_t child_links = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const EdgeId ce : tree.children_edges[static_cast<std::size_t>(v)]) {
      const NodeId c = g.other_endpoint(ce, v);
      LCS_CHECK(tree.parent[static_cast<std::size_t>(c)] == v &&
                    tree.parent_edge[static_cast<std::size_t>(c)] == ce,
                "children list inconsistent with parent pointers");
      ++child_links;
    }
  }
  LCS_CHECK(child_links == tree_edge_count, "children lists incomplete");

  // Reachability: following parents must reach the root (acyclic by depths).
  for (NodeId v = 0; v < n; ++v) {
    NodeId cur = v;
    std::int32_t steps = 0;
    while (cur != tree.root) {
      cur = tree.parent[static_cast<std::size_t>(cur)];
      LCS_CHECK(cur != kNoNode, "parent chain broken");
      LCS_CHECK(++steps <= n, "parent chain cycles");
    }
  }
}

SpanningTree reference_bfs_tree(const Graph& g, NodeId root) {
  const NodeId n = g.num_nodes();
  LCS_CHECK(root >= 0 && root < n, "root out of range");

  SpanningTree tree;
  tree.root = root;
  tree.parent_edge.assign(static_cast<std::size_t>(n), kNoEdge);
  tree.parent.assign(static_cast<std::size_t>(n), kNoNode);
  tree.depth.assign(static_cast<std::size_t>(n), -1);
  tree.children_edges.resize(static_cast<std::size_t>(n));

  std::deque<NodeId> queue{root};
  tree.depth[static_cast<std::size_t>(root)] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    // Scan neighbors in increasing node-id order for deterministic parents.
    std::vector<Graph::Neighbor> nbs(g.neighbors(v).begin(),
                                     g.neighbors(v).end());
    std::sort(nbs.begin(), nbs.end(),
              [](const auto& a, const auto& b) { return a.node < b.node; });
    for (const auto& nb : nbs) {
      if (tree.depth[static_cast<std::size_t>(nb.node)] < 0) {
        tree.depth[static_cast<std::size_t>(nb.node)] =
            tree.depth[static_cast<std::size_t>(v)] + 1;
        tree.parent[static_cast<std::size_t>(nb.node)] = v;
        tree.parent_edge[static_cast<std::size_t>(nb.node)] = nb.edge;
        tree.children_edges[static_cast<std::size_t>(v)].push_back(nb.edge);
        queue.push_back(nb.node);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v)
    LCS_CHECK(tree.depth[static_cast<std::size_t>(v)] >= 0,
              "graph must be connected");
  tree.finalize(g);
  return tree;
}

}  // namespace lcs
