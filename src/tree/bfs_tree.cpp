#include "tree/bfs_tree.h"

#include <algorithm>
#include <limits>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

enum MsgTag : std::uint32_t { kExplore, kAccept, kReject, kDone };

class BfsProcess final : public congest::Process {
 public:
  BfsProcess(NodeId id, NodeId root) : id_(id), root_(root) {}

  // Protocol outputs (valid after the phase quiesces).
  EdgeId parent_edge = kNoEdge;
  NodeId parent = kNoNode;
  std::int32_t depth = -1;
  std::vector<EdgeId> children;

  void on_start(Context& ctx) override {
    if (id_ != root_) return;
    depth = 0;
    pending_replies_ = util::checked_cast<int>(ctx.neighbors().size());
    for (const auto& nb : ctx.neighbors())
      ctx.send(nb.edge, Message(kExplore, 0));
    maybe_finish(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    // Collect this round's explorers first: if the node is still orphaned it
    // adopts exactly one of them and must reject the rest, and it must not
    // explore back over edges that explored it.
    std::vector<const Incoming*> explorers;
    bool adopted_this_round = false;
    for (const auto& in : inbox) {
      switch (in.msg.tag) {
        case kExplore:
          explorers.push_back(&in);
          break;
        case kAccept:
          children.push_back(in.edge);
          --pending_replies_;
          ++pending_done_;
          break;
        case kReject:
          --pending_replies_;
          break;
        case kDone:
          --pending_done_;
          break;
        default:
          LCS_CHECK(false, "unknown BFS message tag");
      }
    }

    if (!explorers.empty()) {
      if (depth < 0) {
        // Adopt the explorer with the smallest edge id (deterministic).
        const Incoming* chosen = explorers.front();
        for (const auto* e : explorers)
          if (e->edge < chosen->edge) chosen = e;
        parent_edge = chosen->edge;
        parent = chosen->from;
        depth = util::checked_cast<std::int32_t>(chosen->msg.words[0]) + 1;
        adopted_this_round = true;
        ctx.send(parent_edge, Message(kAccept));
        for (const auto* e : explorers) {
          if (e != chosen)
            ctx.send(e->edge, Message(kReject));
        }
        // Explore everyone who did not contact us this round.
        for (const auto& nb : ctx.neighbors()) {
          const bool contacted =
              nb.edge == parent_edge ||
              std::any_of(explorers.begin(), explorers.end(),
                          [&](const Incoming* e) { return e->edge == nb.edge; });
          if (!contacted) {
            ctx.send(nb.edge, Message(kExplore,
                                      static_cast<std::uint64_t>(depth)));
            ++pending_replies_;
          }
        }
      } else {
        // Already in the tree: reject all late explorers.
        for (const auto* e : explorers) ctx.send(e->edge, Message(kReject));
      }
    }

    if (adopted_this_round) {
      // ACCEPT already went over the parent edge this round; a DONE (if we
      // are a leaf) must wait for the next round or it would be a second
      // send on the same edge.
      ctx.wake_next_round();
    } else {
      maybe_finish(ctx);
    }
  }

 private:
  void maybe_finish(Context& ctx) {
    if (done_sent_ || depth < 0) return;
    if (pending_replies_ > 0 || pending_done_ > 0) return;
    done_sent_ = true;
    if (parent_edge != kNoEdge) ctx.send(parent_edge, Message(kDone));
  }

  NodeId id_;
  NodeId root_;
  int pending_replies_ = 0;
  int pending_done_ = 0;
  bool done_sent_ = false;
};

}  // namespace

SpanningTree build_bfs_tree(congest::Network& net, NodeId root) {
  const NodeId n = net.num_nodes();
  LCS_CHECK(root >= 0 && root < n, "root out of range");

  std::vector<BfsProcess> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) procs.emplace_back(v, root);
  congest::run_phase(net, procs);

  SpanningTree tree;
  tree.root = root;
  tree.parent_edge.resize(static_cast<std::size_t>(n));
  tree.parent.resize(static_cast<std::size_t>(n));
  tree.depth.resize(static_cast<std::size_t>(n));
  tree.children_edges.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    auto& p = procs[static_cast<std::size_t>(v)];
    LCS_CHECK(p.depth >= 0, "BFS did not reach every node; graph connected?");
    tree.parent_edge[static_cast<std::size_t>(v)] = p.parent_edge;
    tree.parent[static_cast<std::size_t>(v)] = p.parent;
    tree.depth[static_cast<std::size_t>(v)] = p.depth;
    tree.children_edges[static_cast<std::size_t>(v)] = std::move(p.children);
  }
  tree.finalize(net.graph());
  return tree;
}

}  // namespace lcs
