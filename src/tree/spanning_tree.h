/// \file spanning_tree.h
/// The rooted spanning tree `T` that tree-restricted shortcuts live on.
///
/// `SpanningTree` aggregates the per-node local state produced by the
/// distributed BFS construction (`bfs_tree.h`): each node's parent edge,
/// depth, children, and the depths of its neighbors — exactly the
/// "distributed representation" the paper requires (Section 4.1). The
/// aggregate is centralized storage only; protocols must read just their
/// own node's entries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/cast.h"

namespace lcs {

struct SpanningTree {
  NodeId root = kNoNode;

  /// parent_edge[v]: tree edge to parent, kNoEdge for root.
  std::vector<EdgeId> parent_edge;
  /// parent[v]: parent node id, kNoNode for root.
  std::vector<NodeId> parent;
  /// depth[v]: hop distance from root along the tree.
  std::vector<std::int32_t> depth;
  /// children_edges[v]: tree edges to children.
  std::vector<std::vector<EdgeId>> children_edges;

  /// Depth of the tree (max over nodes). For a BFS tree this is <= D, the
  /// graph diameter; the paper denotes both by D.
  std::int32_t height = 0;

  NodeId num_nodes() const { return util::checked_cast<NodeId>(depth.size()); }

  /// True if `e` is one of the tree's parent/child edges.
  bool is_tree_edge(EdgeId e) const {
    return tree_edge_flags_[static_cast<std::size_t>(e)];
  }

  /// The lower (deeper) endpoint of tree edge `e`; the edge is the parent
  /// edge of that node.
  NodeId lower_endpoint(EdgeId e) const {
    return edge_lower_[static_cast<std::size_t>(e)];
  }

  /// Populate derived lookups (tree-edge flags, lower endpoints, height).
  /// Must be called after the per-node fields are filled in.
  void finalize(const Graph& g);

 private:
  std::vector<bool> tree_edge_flags_;
  std::vector<NodeId> edge_lower_;
};

/// Check structural invariants: exactly one root, parents form a connected
/// acyclic structure spanning all nodes, depths consistent, children lists
/// match parents. Throws CheckFailure on violation.
void validate_spanning_tree(const Graph& g, const SpanningTree& tree);

/// Centralized reference BFS tree (for tests): min-id tie-breaking.
SpanningTree reference_bfs_tree(const Graph& g, NodeId root);

}  // namespace lcs
