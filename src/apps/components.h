/// \file components.h
/// Distributed connected components of a *logical subgraph* over the intact
/// physical network — the primitive behind connectivity verification and
/// sampling-based min-cut (both members of the Ω̃(√n + D) problem family
/// the paper's framework accelerates).
///
/// The algorithm is unweighted Boruvka: fragments repeatedly merge along
/// the smallest-id alive outgoing edge, with fragment aggregation running
/// on freshly constructed tree-restricted shortcuts (communication may use
/// every physical edge; only candidate edges are filtered to `edge_alive`).
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct ComponentsResult {
  /// Component label per node; two nodes share a label iff they are
  /// connected by alive edges.
  congest::PerNode<PartId> label;
  std::int32_t phases = 0;
  std::int64_t rounds = 0;
};

/// Labels the components of the subgraph restricted to `edge_alive`.
/// `seed` drives the shortcut construction and merge coins.
ComponentsResult distributed_components(congest::Network& net,
                                        const SpanningTree& tree,
                                        const std::vector<bool>& edge_alive,
                                        std::uint64_t seed = 1);

}  // namespace lcs
