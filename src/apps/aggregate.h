/// \file aggregate.h
/// The user-facing embodiment of the paper's programming model: "a graph is
/// partitioned into disjoint connected parts; compute a simple function for
/// each part in isolation" (Section 1.2).
///
/// `PartAggregator` constructs a tree-restricted shortcut once (FindShortcut
/// with Appendix-A doubling — no parameters needed) and then serves
/// part-wise operations, each in O(b(D + c)) rounds:
///   * min / leader election over each part,
///   * broadcast from a designated member to the whole part.
/// This is the API the examples and applications build on.
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/representation.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"

namespace lcs {

class PartAggregator {
 public:
  /// Builds the shortcut for (tree, partition) via doubling. All rounds are
  /// accounted in `net`; inspect `construction_stats()` for the breakdown.
  PartAggregator(congest::Network& net, const SpanningTree& tree,
                 const Partition& partition,
                 FindShortcutParams params = {});

  /// Minimum of `values` over each part, known to every member afterwards.
  /// Non-member entries are ignored; returns kNoValue for part-less nodes.
  congest::PerNode<std::uint64_t> min(
      const congest::PerNode<std::uint64_t>& values);

  /// Smallest node id of each part, known to every member.
  congest::PerNode<NodeId> leaders();

  /// Flood `value_at_source` (< kNoValue only at source members).
  congest::PerNode<std::uint64_t> broadcast(
      const congest::PerNode<std::uint64_t>& value_at_source);

  const FindShortcutStats& construction_stats() const { return stats_; }
  const ShortcutState& state() const { return state_; }

 private:
  congest::Network& net_;
  const SpanningTree& tree_;
  const Partition& partition_;
  ShortcutState state_;
  NeighborParts neighbor_parts_;
  FindShortcutStats stats_;
  std::int32_t b_steps_;
};

}  // namespace lcs
