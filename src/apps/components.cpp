#include "apps/components.h"

#include <cmath>

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "mst/boruvka_common.h"
#include "mst/mwoe.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/part_routing.h"
#include "shortcut/superstep.h"
#include "shortcut/tree_ops.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

namespace {

/// Alive outgoing candidate with (edge id) as the key (unweighted graphs:
/// any outgoing alive edge will do; the id makes the choice unique).
congest::PerNode<std::uint64_t> alive_candidates(
    const Graph& g, const Partition& fragments,
    const NeighborParts& neighbor_parts, const std::vector<bool>& alive) {
  congest::PerNode<std::uint64_t> result(
      static_cast<std::size_t>(g.num_nodes()), kNoCandidate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId mine = fragments.part(v);
    if (mine == kNoPart) continue;
    const auto nbs = g.neighbors(v);
    const auto& nb_parts = neighbor_parts.of[static_cast<std::size_t>(v)];
    for (std::size_t k = 0; k < nbs.size(); ++k) {
      if (nb_parts[k] == mine) continue;
      if (!alive[static_cast<std::size_t>(nbs[k].edge)]) continue;
      result[static_cast<std::size_t>(v)] =
          std::min(result[static_cast<std::size_t>(v)],
                   pack_candidate(1, nbs[k].edge));
    }
  }
  return result;
}

}  // namespace

ComponentsResult distributed_components(congest::Network& net,
                                        const SpanningTree& tree,
                                        const std::vector<bool>& edge_alive,
                                        std::uint64_t seed) {
  const Graph& g = net.graph();
  const NodeId n = net.num_nodes();
  LCS_CHECK(edge_alive.size() == static_cast<std::size_t>(g.num_edges()),
            "one aliveness bit per edge required");
  const std::int64_t rounds_before = net.total_rounds();

  Partition fragments = make_singleton_partition(n);
  std::vector<bool> unused_marks(static_cast<std::size_t>(g.num_edges()),
                                 false);
  FindShortcutParams params;

  const std::int32_t max_phases =
      8 * util::checked_trunc<std::int32_t>(
              std::log2(std::max<double>(2.0, n))) +
      20;
  std::int32_t phase = 0;
  for (;; ++phase) {
    LCS_CHECK(phase < max_phases, "components did not converge (bug)");

    const NeighborParts neighbor_parts =
        exchange_neighbor_parts(net, fragments);

    params.seed = hash64(seed, 0xBEEF, phase);
    const FindShortcutResult found =
        find_shortcut_doubling(net, tree, fragments, params);
    params.c = found.stats.used_c;
    params.b = found.stats.used_b;
    const std::int32_t b_steps = 3 * found.stats.used_b;

    const auto local =
        alive_candidates(g, fragments, neighbor_parts, edge_alive);
    const auto mwoe =
        part_min_flood(net, tree, fragments, found.state, neighbor_parts,
                       b_steps, local);

    StarMergeStep step = star_merge_step(g, fragments, neighbor_parts, mwoe,
                                         seed, phase, unused_marks);
    const auto delivered =
        part_broadcast(net, tree, fragments, found.state, neighbor_parts,
                       b_steps, step.proposals);
    apply_merges(fragments, delivered);

    if (!global_or(net, tree, step.has_outgoing)) break;
  }

  ComponentsResult result;
  result.label = fragments.part_of;
  result.phases = phase + 1;
  result.rounds = net.total_rounds() - rounds_before;
  return result;
}

}  // namespace lcs
