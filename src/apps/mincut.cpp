#include "apps/mincut.h"

#include <cmath>

#include "apps/components.h"
#include "congest/network.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

MincutEstimate approx_mincut(congest::Network& net, const SpanningTree& tree,
                             std::uint64_t seed) {
  const Graph& g = net.graph();
  const std::int64_t rounds_before = net.total_rounds();

  MincutEstimate result;
  // Level k samples each edge with probability 2^-k. Level 0 keeps all
  // edges (connected by assumption); stop at the first disconnecting level.
  for (std::int32_t k = 1;; ++k) {
    LCS_CHECK(k < 63, "sampling sweep failed to disconnect (bug)");
    ++result.levels_tested;

    // Shared randomness: both endpoints of an edge evaluate the same coin,
    // so the sample needs no communication.
    std::vector<bool> alive(static_cast<std::size_t>(g.num_edges()));
    const double p = std::pow(0.5, k);
    bool any_dead = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      alive[static_cast<std::size_t>(e)] =
          hash_coin(hash64(seed, static_cast<std::uint64_t>(k)),
                    static_cast<std::uint64_t>(e), p);
      any_dead = any_dead || !alive[static_cast<std::size_t>(e)];
    }
    if (!any_dead) continue;  // nothing sampled out; trivially connected

    const ComponentsResult comps =
        distributed_components(net, tree, alive, hash64(seed, 0xCA7, k));
    bool disconnected = false;
    for (NodeId v = 1; v < g.num_nodes() && !disconnected; ++v)
      disconnected = comps.label[static_cast<std::size_t>(v)] !=
                     comps.label[0];

    if (disconnected) {
      result.estimate = Weight{1} << k;
      break;
    }
  }

  result.rounds = net.total_rounds() - rounds_before;
  return result;
}

}  // namespace lcs
