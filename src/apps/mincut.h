/// \file mincut.h
/// Karger-sampling O(log n)-approximate global min cut on top of
/// distributed connectivity — the "Min-Cut approximation" application the
/// paper lists for its framework (unweighted/uniform-capacity graphs).
///
/// Idea: sampling each edge with probability p keeps the graph connected
/// w.h.p. while p·λ = Ω(log n) and disconnects it w.h.p. once p·λ ≪ 1.
/// Sweeping p over powers of two and testing connectivity distributedly
/// (the shared seed makes every node agree on each sample locally) brackets
/// λ within an O(log n) factor. Each connectivity test is a components run
/// whose round cost is the shortcut-framework cost — Õ(D) on shortcut-good
/// topologies.
#pragma once

#include "congest/network.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct MincutEstimate {
  /// Estimated min cut: 2^k_star, where 1/2^k_star is the coarsest sampling
  /// rate that disconnected the graph (1 if the full graph is already
  /// disconnected). The true λ satisfies
  ///     estimate / O(log n) <= λ <= estimate * O(log n)   w.h.p.
  Weight estimate = 0;
  std::int32_t levels_tested = 0;
  std::int64_t rounds = 0;
};

/// Estimate the (unweighted) global min cut of `net.graph()`.
MincutEstimate approx_mincut(congest::Network& net, const SpanningTree& tree,
                             std::uint64_t seed = 1);

}  // namespace lcs
