#include "apps/aggregate.h"

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/part_routing.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"

namespace lcs {

PartAggregator::PartAggregator(congest::Network& net, const SpanningTree& tree,
                               const Partition& partition,
                               FindShortcutParams params)
    : net_(net), tree_(tree), partition_(partition) {
  FindShortcutResult found =
      find_shortcut_doubling(net, tree, partition, params);
  state_ = std::move(found.state);
  stats_ = found.stats;
  b_steps_ = 3 * stats_.used_b;
  neighbor_parts_ = exchange_neighbor_parts(net, partition);
}

congest::PerNode<std::uint64_t> PartAggregator::min(
    const congest::PerNode<std::uint64_t>& values) {
  return part_min_flood(net_, tree_, partition_, state_, neighbor_parts_,
                        b_steps_, values);
}

congest::PerNode<NodeId> PartAggregator::leaders() {
  return elect_part_leaders(net_, tree_, partition_, state_, neighbor_parts_,
                            b_steps_);
}

congest::PerNode<std::uint64_t> PartAggregator::broadcast(
    const congest::PerNode<std::uint64_t>& value_at_source) {
  return part_broadcast(net_, tree_, partition_, state_, neighbor_parts_,
                        b_steps_, value_at_source);
}

}  // namespace lcs
