#!/usr/bin/env bash
# Kill-mid-write regression gate for the atomic binary-cache writes.
#
# Every save_* entry point writes `<path>.tmp` then atomically renames onto
# `<path>` (io.h "Atomic writes"). The io layer's LCS_IO_CRASH hooks
# simulate the two crash windows:
#   * mid-write      — process dies with a half-written temp file,
#   * before-rename  — process dies with a complete temp file not renamed.
# In both cases the final path must be untouched: absent if it never
# existed, the OLD complete cache if it did. A torn file at the final path
# is the bug this gate exists to catch.
#
# Usage: atomic_save_test.sh /path/to/lcs_run
set -u

run="${1:?usage: atomic_save_test.sh /path/to/lcs_run}"
run=$(realpath "$run")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"
failures=0

save() {  # save SPEC PATH [env...]
  local spec="$1" path="$2"
  shift 2
  env "$@" "$run" --algo=none --scenario="$spec" --no-timing \
    --save-graph="$path" --out=/dev/null 2>/dev/null
}

check() {
  local name="$1" ok="$2" detail="$3"
  if [[ "$ok" == "yes" ]]; then
    echo "ok   $name"
  else
    echo "FAIL $name: $detail" >&2
    failures=$((failures + 1))
  fi
}

# --- crash on a fresh path: no file must appear ----------------------------
save "grid:w=10,h=10" fresh.bin LCS_IO_CRASH=mid-write
rc=$?
check fresh_midwrite_exit "$([[ $rc -eq 41 ]] && echo yes || echo no)" \
  "crash hook exited $rc, expected 41"
check fresh_midwrite_no_file "$([[ ! -e fresh.bin ]] && echo yes || echo no)" \
  "torn fresh.bin exists after mid-write crash"

save "grid:w=10,h=10" fresh.bin LCS_IO_CRASH=before-rename
rc=$?
check fresh_prerename_exit "$([[ $rc -eq 42 ]] && echo yes || echo no)" \
  "crash hook exited $rc, expected 42"
check fresh_prerename_no_file \
  "$([[ ! -e fresh.bin ]] && echo yes || echo no)" \
  "fresh.bin exists after before-rename crash"

# --- crash over an existing cache: old bytes must survive ------------------
save "grid:w=10,h=10" cache.bin
check baseline_save "$([[ -s cache.bin ]] && echo yes || echo no)" \
  "baseline save produced no file"
cp cache.bin cache.golden

save "er:n=400,deg=6,seed=3" cache.bin LCS_IO_CRASH=mid-write
check overwrite_midwrite_preserved \
  "$(cmp -s cache.bin cache.golden && echo yes || echo no)" \
  "mid-write crash changed the existing cache file"

save "er:n=400,deg=6,seed=3" cache.bin LCS_IO_CRASH=before-rename
check overwrite_prerename_preserved \
  "$(cmp -s cache.bin cache.golden && echo yes || echo no)" \
  "before-rename crash changed the existing cache file"

# The survivor must still be a loadable, complete cache.
"$run" --algo=components --scenario="file:cache.bin" --no-timing \
  --out=/dev/null 2>/dev/null
check survivor_loads "$([[ $? -eq 0 ]] && echo yes || echo no)" \
  "surviving cache file no longer loads"

# --- a later clean save completes the interrupted update -------------------
save "er:n=400,deg=6,seed=3" cache.bin
check clean_overwrite \
  "$(cmp -s cache.bin cache.golden && echo no || echo yes)" \
  "clean save did not replace the cache"
check clean_overwrite_no_tmp \
  "$([[ ! -e cache.bin.tmp ]] && echo yes || echo no)" \
  "temp file left behind after a clean save"
"$run" --algo=components --scenario="file:cache.bin" --no-timing \
  --out=/dev/null 2>/dev/null
check replacement_loads "$([[ $? -eq 0 ]] && echo yes || echo no)" \
  "replacement cache file does not load"

if [[ "$failures" -ne 0 ]]; then
  echo "atomic_save_test: $failures failure(s)" >&2
  exit 1
fi
echo "atomic_save_test: crashes in both windows leave the final path complete"
