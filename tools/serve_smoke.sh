#!/usr/bin/env bash
# Byte-identity gate for the serve daemon.
#
# The contract that makes lcs_serve trustworthy: every response payload is
# byte-identical to the stdout of the equivalent one-shot lcs_run
# invocation — healthy reports, sweep arrays, and error objects alike —
# and the frame's exit code matches lcs_run's. This script:
#
#   1. renders a request matrix (every algorithm, a sweep, a churn cell,
#      and two error requests) through lcs_run to get the expected bytes;
#   2. replays the same matrix through lcs_serve at --parallel-requests
#      1, 2, and 4 and diffs every payload byte-for-byte;
#   3. replays the matrix in reverse order at --parallel-requests=4 and
#      requires every per-id payload to be unchanged — batching and
#      worker interleaving must not leak into any response.
#
# Usage: serve_smoke.sh /path/to/lcs_serve /path/to/lcs_run
set -u

serve="${1:?usage: serve_smoke.sh /path/to/lcs_serve /path/to/lcs_run}"
run="${2:?usage: serve_smoke.sh /path/to/lcs_serve /path/to/lcs_run}"
serve=$(realpath "$serve")
run=$(realpath "$run")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
failures=0

# The matrix: id | JSON request | equivalent lcs_run arguments.
IDS=()
REQS=()
declare -A RUN_ARGS
add() {
  IDS+=("$1")
  REQS+=("$2")
  RUN_ARGS[$1]="$3"
}
add comp '{"id":"comp","algo":"components","scenario":"grid:w=12,h=12","seed":7,"validate":true,"timing":false}' \
  '--algo=components --scenario=grid:w=12,h=12 --seed=7 --validate --no-timing'
add mst '{"id":"mst","algo":"mst","scenario":"er:n=150,deg=5,seed=5","seed":7,"validate":true,"timing":false}' \
  '--algo=mst --scenario=er:n=150,deg=5,seed=5 --seed=7 --validate --no-timing'
add mincut '{"id":"mincut","algo":"mincut","scenario":"torus:w=8,h=8","seed":7,"validate":true,"timing":false}' \
  '--algo=mincut --scenario=torus:w=8,h=8 --seed=7 --validate --no-timing'
add agg '{"id":"agg","algo":"aggregate","scenario":"wheel:n=65,arcs=4","seed":7,"validate":true,"timing":false}' \
  '--algo=aggregate --scenario=wheel:n=65,arcs=4 --seed=7 --validate --no-timing'
add short '{"id":"short","algo":"shortcut","scenario":"rmat:scale=7,deg=5,seed=3","seed":7,"validate":true,"timing":false}' \
  '--algo=shortcut --scenario=rmat:scale=7,deg=5,seed=3 --seed=7 --validate --no-timing'
# Engine-thread dimension: served bytes must match lcs_run at --threads
# 2 and 4 too (with the adaptive fallback disabled, as in golden_smoke.sh
# — and the engine's own contract makes all three thread counts
# bit-identical to each other).
add short_t2 '{"id":"short_t2","algo":"shortcut","scenario":"rmat:scale=7,deg=5,seed=3","seed":7,"threads":2,"parallel_threshold":0,"validate":true,"timing":false}' \
  '--algo=shortcut --scenario=rmat:scale=7,deg=5,seed=3 --seed=7 --threads=2 --parallel-threshold=0 --validate --no-timing'
add short_t4 '{"id":"short_t4","algo":"shortcut","scenario":"rmat:scale=7,deg=5,seed=3","seed":7,"threads":4,"parallel_threshold":0,"validate":true,"timing":false}' \
  '--algo=shortcut --scenario=rmat:scale=7,deg=5,seed=3 --seed=7 --threads=4 --parallel-threshold=0 --validate --no-timing'
add mst_t4 '{"id":"mst_t4","algo":"mst","scenario":"er:n=150,deg=5,seed=5","seed":7,"threads":4,"parallel_threshold":0,"validate":true,"timing":false}' \
  '--algo=mst --scenario=er:n=150,deg=5,seed=5 --seed=7 --threads=4 --parallel-threshold=0 --validate --no-timing'
# Backend dimension: a non-default shortcut construction selected through
# the request's "backend" field, and the inapplicable-backend error object.
add short_kkoi19 '{"id":"short_kkoi19","algo":"shortcut","scenario":"ktree:n=120,k=3,seed=8","backend":"kkoi19","seed":7,"validate":true,"timing":false}' \
  '--algo=shortcut --scenario=ktree:n=120,k=3,seed=8 --backend=kkoi19 --seed=7 --validate --no-timing'
add err_backend '{"id":"err_backend","algo":"shortcut","scenario":"er:n=100,deg=4,seed=5","backend":"kkoi19","timing":false}' \
  '--algo=shortcut --scenario=er:n=100,deg=4,seed=5 --backend=kkoi19 --no-timing'
add sweep '{"id":"sweep","algo":"components","scenario":"er:n=100,deg=4,seed=5","sweep":"n=100..400:x2","seed":7,"timing":false}' \
  '--algo=components --scenario=er:n=100,deg=4,seed=5 --sweep=n=100..400:x2 --seed=7 --no-timing'
add churn '{"id":"churn","algo":"churn","scenario":"churn:base=er:n=150,deg=5,seed=5;steps=200,rate=0.02,seed=7","seed":7,"timing":false}' \
  '--algo=churn --scenario=churn:base=er:n=150,deg=5,seed=5;steps=200,rate=0.02,seed=7 --seed=7 --no-timing'
# Error paths must match lcs_run's JSON error objects and exit codes too.
add err_family '{"id":"err_family","algo":"components","scenario":"frobnicate:n=10","timing":false}' \
  '--algo=components --scenario=frobnicate:n=10 --no-timing'
add err_sweep '{"id":"err_sweep","algo":"components","scenario":"er:n=100,deg=4","sweep":"bogus=1..4","timing":false}' \
  '--algo=components --scenario=er:n=100,deg=4 --sweep=bogus=1..4 --no-timing'

# Expected bytes and exit codes from the one-shot tool.
for id in "${IDS[@]}"; do
  # shellcheck disable=SC2086
  "$run" ${RUN_ARGS[$id]} > "$TMP/$id.expected" 2>/dev/null
  echo $? > "$TMP/$id.expected_rc"
done

# Split framed serve output into per-id payload and exit-code files.
# Payload lines never start with '#lcs_serve ' (pretty-printed JSON), so
# line-based splitting is exact.
split_frames() {
  local dir="$1"
  mkdir -p "$dir"
  awk -v dir="$dir" '
    /^#lcs_serve id=/ {
      id = ""; rc = ""
      for (i = 1; i <= NF; i++) {
        if ($i ~ /^id=/) id = substr($i, 4)
        if ($i ~ /^exit=/) rc = substr($i, 6)
      }
      file = dir "/" id ".payload"
      printf "" > file
      print rc > (dir "/" id ".rc")
      next
    }
    { print >> file }
  '
}

check_replay() {
  local name="$1" dir="$2"
  for id in "${IDS[@]}"; do
    if ! diff -u "$TMP/$id.expected" "$dir/$id.payload" >&2; then
      echo "FAIL $name/$id: payload differs from one-shot lcs_run" >&2
      failures=$((failures + 1))
    fi
    if [[ "$(cat "$dir/$id.rc")" != "$(cat "$TMP/$id.expected_rc")" ]]; then
      echo "FAIL $name/$id: frame exit code $(cat "$dir/$id.rc")," \
           "lcs_run exited $(cat "$TMP/$id.expected_rc")" >&2
      failures=$((failures + 1))
    fi
  done
  echo "ok   $name"
}

requests="$TMP/requests.jsonl"
printf '%s\n' "${REQS[@]}" '{"cmd":"quit"}' > "$requests"

for par in 1 2 4; do
  dir="$TMP/par$par"
  "$serve" --parallel-requests="$par" < "$requests" 2>/dev/null \
    | split_frames "$dir"
  check_replay "parallel_requests_$par" "$dir"
done

# Interleaving determinism: reversed request order, parallel dispatch.
reversed="$TMP/requests_reversed.jsonl"
{
  for ((i = ${#REQS[@]} - 1; i >= 0; i--)); do printf '%s\n' "${REQS[$i]}"; done
  printf '%s\n' '{"cmd":"quit"}'
} > "$reversed"
dir="$TMP/reversed"
"$serve" --parallel-requests=4 < "$reversed" 2>/dev/null | split_frames "$dir"
check_replay "reversed_order" "$dir"

if [[ "$failures" -ne 0 ]]; then
  echo "serve_smoke: $failures failure(s)" >&2
  exit 1
fi
echo "serve_smoke: ${#IDS[@]} requests byte-identical to lcs_run at --parallel-requests 1/2/4 + reversed order"
