/// \file lcs_run.cpp
/// End-to-end driver: run any registered algorithm on any scenario spec and
/// emit a machine-readable JSON report.
///
///     lcs_run --algo=mst --scenario="grid:w=64,h=64,weights=1-100000"
///             --threads=4 --seed=7 --validate
///
/// Algorithms: components | mst | mincut | aggregate | shortcut, `churn`
/// (drive the scenario through a verified dynamic edge-churn stream, see
/// src/dynamic/), or `none` to stop after scenario resolution (generator
/// studies, generation smoke).
/// The report carries the scenario parameters, graph metrics, exact round/
/// message accounting (setup vs algorithm), the engine's charged-round
/// breakdown, oracle-validation results, and wall time.
///
/// Determinism: everything except the `timing` object is a pure function of
/// (--scenario, --algo, --seed, --fail-rate, --validate, --metrics,
/// --sweep) — in particular it is bit-identical at every --threads value
/// (the engine's determinism contract). `--no-timing` omits the `timing`
/// object so two reports can be diffed byte-for-byte; the golden CI gate
/// runs the scenario x algorithm matrix at --threads 1/2/4 exactly that way.
///
/// Scaling curves come from one invocation: `--sweep key=lo..hi[:steps|xN]`
/// re-resolves the scenario spec once per point with `key` overridden and
/// emits a single JSON array of per-point reports:
///
///     lcs_run --algo=components --scenario="er:n=1000,deg=6"
///             --sweep="n=1k..1M:x10" --no-timing
///
/// This tool is flag parsing around the shared report core in
/// src/driver/run_driver.h; the persistent daemon (`lcs_serve`) calls the
/// same core, which is what makes served responses byte-identical to these
/// one-shot reports.
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "driver/run_driver.h"
#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "util/check.h"

namespace {

using namespace lcs;

struct Options {
  driver::RunOptions run;
  std::string out_path;  // empty = stdout
  bool list = false;
  bool list_backends = false;
};

constexpr const char* kUsage = R"(usage: lcs_run --algo=ALGO --scenario=SPEC [options]

  --algo=ALGO        components | mst | mincut | aggregate | shortcut | churn,
                     or none (resolve the scenario, skip the engine)
  --scenario=SPEC    scenario spec, e.g. "grid:w=64,h=64" or "file:road.bin"
                     (run --list for the full family vocabulary); --algo=churn
                     also accepts the "churn:base=SPEC;params" wrapper
  --backend=NAME     shortcut construction for --algo=shortcut (default
                     hiz16, the paper's pipeline; run --list-backends for
                     the registered constructions and their applicability)
  --churn=PARAMS     churn stream parameters for --algo=churn with a plain
                     base --scenario, e.g. "steps=1000,rate=0.02,seed=7"
                     (see src/dynamic/churn.h for the vocabulary)
  --sweep=RANGE      key=lo..hi[:steps|xfactor] — run once per point with
                     the scenario's `key` parameter overridden, emitting one
                     JSON array of reports. lo/hi take k/M/G suffixes;
                     ":5" = 5 evenly spaced points, ":x10" = multiply by 10
                     per point (the default is :x2)
  --threads=N        engine worker threads (default 1; 0 = hardware)
  --seed=S           algorithm seed (default 1)
  --fail-rate=F      components: failed-edge fraction in [0, 1) (default 0.25)
  --validate         CONGEST checks on + verify the result against the
                     centralized oracle (nonzero exit on mismatch)
  --metrics          include expensive graph metrics in the report
  --no-timing        omit the timing object (byte-stable golden output)
  --parallel-threshold=N  engine adaptive-fallback override (0 = always
                     parallel; default: engine built-in)
  --save-graph=PATH  also save the scenario's graph as a binary cache
  --out=PATH         write the JSON report to PATH instead of stdout
  --list             list registered scenario families and exit
  --list-backends    list registered shortcut backends and exit
)";

bool take_value(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

/// Strict numeric flag parsing: the whole value must parse (a typo like
/// --threads=4x is a usage error, not 4).
template <class T>
T parse_flag(const std::string& value, const char* flag) {
  T out{};
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (res.ec != std::errc() || res.ptr != value.data() + value.size()) {
    std::cerr << "lcs_run: bad value '" << value << "' for " << flag << "\n";
    std::exit(2);
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (take_value(arg, "--algo", o.run.algo)) continue;
    if (take_value(arg, "--scenario", o.run.scenario)) continue;
    if (take_value(arg, "--backend", o.run.backend)) continue;
    if (take_value(arg, "--churn", o.run.churn)) continue;
    if (take_value(arg, "--sweep", o.run.sweep)) continue;
    if (take_value(arg, "--out", o.out_path)) continue;
    if (take_value(arg, "--save-graph", o.run.save_graph_path)) continue;
    if (take_value(arg, "--threads", v)) {
      o.run.threads = parse_flag<int>(v, "--threads");
      continue;
    }
    if (take_value(arg, "--parallel-threshold", v)) {
      o.run.parallel_threshold =
          parse_flag<std::int64_t>(v, "--parallel-threshold");
      continue;
    }
    if (take_value(arg, "--seed", v)) {
      o.run.seed = parse_flag<std::uint64_t>(v, "--seed");
      continue;
    }
    if (take_value(arg, "--fail-rate", v)) {
      o.run.fail_rate = parse_flag<double>(v, "--fail-rate");
      continue;
    }
    if (std::strcmp(arg, "--validate") == 0) { o.run.validate = true; continue; }
    if (std::strcmp(arg, "--metrics") == 0) { o.run.metrics = true; continue; }
    if (std::strcmp(arg, "--no-timing") == 0) { o.run.timing = false; continue; }
    if (std::strcmp(arg, "--list") == 0) { o.list = true; continue; }
    if (std::strcmp(arg, "--list-backends") == 0) {
      o.list_backends = true;
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::cout << kUsage;
      std::exit(0);
    }
    std::cerr << "lcs_run: unknown argument '" << arg << "'\n" << kUsage;
    std::exit(2);
  }
  return o;
}

void list_families() {
  std::cout << "registered scenario families (spec = family:key=value,...):\n";
  for (const auto& f : scenario::families()) {
    std::cout << "  " << f.name << ":" << f.params_help << "\n      "
              << f.summary << "\n";
  }
  std::cout << "common params: parts=<k>, pseed=<s> (random BFS partition "
               "override);\n               weights=<lo>-<hi>, wseed=<s> "
               "(uniform re-weighting)\n";
}

void list_backends() {
  std::cout << "registered shortcut backends (--backend=NAME, default "
            << backend::kDefaultBackend << "):\n";
  for (const auto& b : backend::backends()) {
    std::cout << "  " << b.name << "\n      paper: " << b.paper << "\n      "
              << b.summary << "\n";
  }
}

int run(const Options& o) {
  std::string report;
  const int rc = driver::run_document(o.run, driver::RunHooks{}, report);

  if (o.out_path.empty()) {
    std::cout << report;
  } else {
    // The document is complete before the file is touched: a failing run
    // can never truncate a pre-existing --out report.
    std::ofstream file_out(o.out_path, std::ios::trunc);
    LCS_CHECK(file_out.is_open(),
              "cannot open '" + o.out_path + "' for writing");
    file_out << report;
  }
  return rc;
}

/// Graceful CLI degradation: any CheckFailure or exception escaping `run`
/// (malformed spec, unknown algo, bad sweep range, unreadable file, a failed
/// churn verification...) becomes a deterministic JSON error object on
/// stdout — tooling that drives lcs_run always reads well-formed JSON — plus
/// a human-readable echo on stderr and a nonzero exit.
int report_error(const char* type, const std::exception& e, int rc) {
  std::cout << driver::error_document(type, e.what(), rc);
  std::cerr << "lcs_run: " << e.what() << "\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  if (o.list) {
    list_families();
    return 0;
  }
  if (o.list_backends) {
    list_backends();
    return 0;
  }
  try {
    return run(o);
  } catch (const CheckFailure& e) {
    return report_error("check_failure", e, 2);
  } catch (const std::exception& e) {
    return report_error("exception", e, 3);
  }
}
