#!/usr/bin/env bash
# CLI graceful-degradation gate for lcs_run.
#
# Every user-input failure (malformed scenario spec, unknown algorithm, bad
# sweep range, malformed churn parameters) must:
#   * exit nonzero (2 for contract-check diagnoses),
#   * emit one well-formed JSON error object on stdout
#     ({"error": {"type", "message", "exit_code"}}) so driving tooling always
#     reads JSON,
#   * be deterministic: two invocations produce byte-identical stdout.
#
# Usage: cli_errors_test.sh /path/to/lcs_run
set -u

run="${1:?usage: cli_errors_test.sh /path/to/lcs_run}"
failures=0

# expect_error NAME EXPECTED_RC [args...]
expect_error() {
  local name="$1" expected_rc="$2"
  shift 2
  local out rc out2 rc2
  out=$("$run" "$@" 2>/dev/null)
  rc=$?
  if [[ "$rc" -ne "$expected_rc" ]]; then
    echo "FAIL $name: exit code $rc, expected $expected_rc" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ "$out" != '{'* || "$out" != *'"error"'* || "$out" != *'"message"'* ]]; then
    echo "FAIL $name: stdout is not a JSON error object:" >&2
    echo "$out" >&2
    failures=$((failures + 1))
    return
  fi
  # Determinism: the error report is a pure function of the invocation.
  out2=$("$run" "$@" 2>/dev/null)
  rc2=$?
  if [[ "$rc2" -ne "$rc" || "$out2" != "$out" ]]; then
    echo "FAIL $name: two identical invocations diverged" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   $name"
}

# expect_error_contains NAME EXPECTED_RC SUBSTRING [args...]
# expect_error plus a pin on the diagnosis text, for messages whose exact
# wording is part of the contract (naming the offending key).
expect_error_contains() {
  local name="$1" expected_rc="$2" substring="$3"
  shift 3
  local out
  out=$("$run" "$@" 2>/dev/null)
  expect_error "$name" "$expected_rc" "$@"
  if [[ "$out" != *"$substring"* ]]; then
    echo "FAIL $name: diagnosis does not name the offender ('$substring'):" >&2
    echo "$out" >&2
    failures=$((failures + 1))
  fi
}

# The three canonical failure paths, plus churn-specific diagnoses.
expect_error malformed_spec 2 --algo=components --scenario='er:n=100,deg'
expect_error unknown_family 2 --algo=components --scenario='frobnicate:n=10'
expect_error unknown_algo 2 --algo=frobnicate --scenario='er:n=100,deg=4'
expect_error bad_sweep_range 2 --algo=components --scenario='er:n=100,deg=4' \
  --sweep='n=10..1'
expect_error bad_sweep_grammar 2 --algo=components --scenario='er:n=100,deg=4' \
  --sweep='n=10'
expect_error churn_unknown_param 2 --algo=churn --scenario='er:n=50,deg=4' \
  --churn='steps=10,frobnicate=1'
expect_error churn_bad_wrapper 2 --algo=churn --scenario='churn:steps=10'
expect_error churn_flag_without_algo 2 --algo=mst --scenario='er:n=50,deg=4' \
  --churn='steps=10'

# Backend selection failures must name the offender and list the legal
# choices — an unknown name, a construction that declines the scenario
# family (with the accepted-backend list for that scenario), and the flag
# on a non-shortcut algorithm.
expect_error_contains unknown_backend 2 "'frobnicate'" \
  --algo=shortcut --scenario='er:n=50,deg=4' --backend=frobnicate
expect_error_contains unknown_backend_lists_registered 2 'registered:' \
  --algo=shortcut --scenario='er:n=50,deg=4' --backend=frobnicate
expect_error_contains inapplicable_backend 2 'not applicable' \
  --algo=shortcut --scenario='er:n=50,deg=4' --backend=kkoi19
expect_error_contains inapplicable_backend_lists_accepted 2 \
  'accepted backends' \
  --algo=shortcut --scenario='er:n=50,deg=4' --backend=kkoi19
expect_error_contains backend_without_shortcut 2 \
  '--backend only applies to --algo=shortcut' \
  --algo=mst --scenario='er:n=50,deg=4' --backend=naive

# Silent-misparse regressions: a duplicated spec key and an unknown spec
# key must be rejected with the offending key named, never last-wins or
# silently defaulted.
expect_error_contains duplicate_spec_key 2 "'n'" \
  --algo=components --scenario='er:n=100,n=200,deg=4'
expect_error_contains unknown_spec_key 2 "'frob'" \
  --algo=components --scenario='er:n=100,deg=4,frob=1'
expect_error_contains unknown_spec_key_lists_accepted 2 'accepted:' \
  --algo=components --scenario='er:n=100,deg=4,frob=1'

# A --sweep key that is not a parameter of the scenario family is rejected
# before any expansion work (and names both the key and the family).
expect_error_contains sweep_unknown_key 2 "'bogus'" \
  --algo=components --scenario='er:n=100,deg=4' --sweep='bogus=1..4'
expect_error_contains sweep_unknown_key_names_family 2 "family 'er'" \
  --algo=components --scenario='er:n=100,deg=4' --sweep='bogus=1..4'
# Common cross-family keys stay sweepable.
out=$("$run" --algo=none --scenario='er:n=50,deg=4' --sweep='pseed=1..2' \
  --no-timing 2>/dev/null)
if [[ $? -ne 0 || "$out" == *'"error"'* ]]; then
  echo "FAIL sweep_common_key: sweeping a common key must stay legal" >&2
  failures=$((failures + 1))
else
  echo "ok   sweep_common_key"
fi

# A successful run must NOT contain the error object (guards against the
# error path leaking into healthy reports).
out=$("$run" --algo=none --scenario='er:n=50,deg=4' --no-timing 2>/dev/null)
rc=$?
if [[ "$rc" -ne 0 || "$out" == *'"error"'* ]]; then
  echo "FAIL healthy_run: rc=$rc or error object in healthy output" >&2
  failures=$((failures + 1))
else
  echo "ok   healthy_run"
fi

if [[ "$failures" -ne 0 ]]; then
  echo "cli_errors_test: $failures failure(s)" >&2
  exit 1
fi
echo "cli_errors_test: all error paths degrade gracefully"
