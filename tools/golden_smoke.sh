#!/usr/bin/env bash
# End-to-end determinism regression gate.
#
# Runs `lcs_run` over a scenario x algorithm matrix (every algorithm on
# every spec, including the four new families and a binary `file:` corpus),
# with --validate (CONGEST checks on + centralized-oracle verification) and
# --no-timing (byte-stable reports), then:
#
#   1. diffs each report byte-for-byte against the committed golden in
#      tests/goldens/ — any drift in round/message accounting, shortcut
#      quality, graph generation, or report formatting fails the gate;
#   2. re-runs each cell at --threads 2 and 4 with --parallel-threshold=0
#      (every round forced through the parallel engine path) and requires
#      the report to be bit-identical to the single-threaded one — the
#      engine's determinism contract, observed end to end.
#
# The matrix also pins one `--sweep` invocation (a JSON array of per-point
# reports), so the sweep plumbing is under the same byte-exact gate.
#
# Usage:
#   tools/golden_smoke.sh <lcs_run-binary> <goldens-dir> [--update]
#
# --update regenerates the goldens from the current binary (review the diff
# before committing); `tools/regen_goldens.sh` wraps this for the common
# case. Registered as the `golden_matrix` ctest and run in CI.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <lcs_run-binary> <goldens-dir> [--update]" >&2
  exit 2
fi

LCS_RUN=$(realpath "$1")
GOLDENS=$(realpath "$2")
UPDATE=${3:-}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"  # file: specs use a relative path so reports are location-free

# Build the corpus for the file: scenario the way a user would: generate
# once, cache as a versioned binary.
"$LCS_RUN" --algo=shortcut --scenario="ktree:n=120,k=3,seed=8" \
  --no-timing --save-graph=corpus.bin --out=/dev/null

NAMES=()
SPECS=()
add() { NAMES+=("$1"); SPECS+=("$2"); }
add grid16   "grid:w=16,h=16"
add torus12  "torus:w=12,h=12"
add er300    "er:n=300,deg=6,seed=5"
add maze16   "maze:w=16,h=16,keep=0.3,seed=9"
add wheel257 "wheel:n=257,arcs=8"
add lb8      "lb:paths=8"
add rmat8    "rmat:scale=8,deg=6,seed=3"
add ba300    "ba:n=300,m=3,seed=4"
add rreg256  "rreg:n=256,d=4,seed=6"
add ktree300 "ktree:n=300,k=3,seed=8"
add corpus   "file:corpus.bin"

ALGOS=(components mst mincut aggregate shortcut)

fail=0
for i in "${!NAMES[@]}"; do
  name=${NAMES[$i]}
  spec=${SPECS[$i]}
  for algo in "${ALGOS[@]}"; do
    out="$TMP/$name.$algo.json"
    if ! "$LCS_RUN" --algo="$algo" --scenario="$spec" --seed=7 \
        --validate --no-timing --out="$out"; then
      echo "FAIL: $name/$algo exited nonzero (validation or runtime error)" >&2
      fail=1
      continue
    fi

    golden="$GOLDENS/$name.$algo.json"
    if [[ "$UPDATE" == "--update" ]]; then
      mkdir -p "$GOLDENS"
      cp "$out" "$golden"
    elif ! diff -u "$golden" "$out" >&2; then
      echo "FAIL: $name/$algo drifted from the committed golden" >&2
      echo "      (deliberate edge-stream/schema change? regenerate ALL" >&2
      echo "      goldens in the same PR: tools/regen_goldens.sh)" >&2
      fail=1
    fi

    for threads in 2 4; do
      tout="$TMP/$name.$algo.t$threads.json"
      if ! "$LCS_RUN" --algo="$algo" --scenario="$spec" --seed=7 \
          --validate --no-timing --threads="$threads" --parallel-threshold=0 \
          --out="$tout"; then
        echo "FAIL: $name/$algo exited nonzero at --threads $threads" >&2
        fail=1
        continue
      fi
      if ! diff -u "$out" "$tout" >&2; then
        echo "FAIL: $name/$algo not bit-identical at --threads $threads" >&2
        fail=1
      fi
    done
  done
done

# Backend cells: the same byte-exact gate over the non-default shortcut
# constructions (--backend). One ktree scenario, every registered backend —
# kkoi19 (treewidth elimination tree) is only applicable there. Besides
# pinning the reports, this section asserts the quality claim the backends
# exist for: kkoi19's congestion on this cell is STRICTLY below hiz16's
# (the elimination tree keeps every part's Steiner subtree narrow).
BK_NAMES=()
BK_SPECS=()
BK_BACKENDS=()
bk_add() { BK_NAMES+=("$1"); BK_SPECS+=("$2"); BK_BACKENDS+=("$3"); }
bk_add ktree400 "ktree:n=400,k=4,seed=3" hiz16
bk_add ktree400 "ktree:n=400,k=4,seed=3" kkoi19
bk_add ktree400 "ktree:n=400,k=4,seed=3" naive

congestion_of() {  # first "congestion" value in a report
  grep -o '"congestion": [0-9]*' "$1" | head -1 | grep -o '[0-9]*'
}

for i in "${!BK_NAMES[@]}"; do
  name=${BK_NAMES[$i]}
  spec=${BK_SPECS[$i]}
  be=${BK_BACKENDS[$i]}
  out="$TMP/$name.$be.json"
  if ! "$LCS_RUN" --algo=shortcut --scenario="$spec" --backend="$be" \
      --seed=7 --validate --no-timing --out="$out"; then
    echo "FAIL: $name/$be exited nonzero (validation or runtime error)" >&2
    fail=1
    continue
  fi

  golden="$GOLDENS/$name.$be.json"
  if [[ "$UPDATE" == "--update" ]]; then
    cp "$out" "$golden"
  elif ! diff -u "$golden" "$out" >&2; then
    echo "FAIL: $name/$be drifted from the committed golden" >&2
    echo "      (deliberate change? regenerate: tools/regen_goldens.sh)" >&2
    fail=1
  fi

  for threads in 2 4; do
    tout="$TMP/$name.$be.t$threads.json"
    if ! "$LCS_RUN" --algo=shortcut --scenario="$spec" --backend="$be" \
        --seed=7 --validate --no-timing --threads="$threads" \
        --parallel-threshold=0 --out="$tout"; then
      echo "FAIL: $name/$be exited nonzero at --threads $threads" >&2
      fail=1
      continue
    fi
    if ! diff -u "$out" "$tout" >&2; then
      echo "FAIL: $name/$be not bit-identical at --threads $threads" >&2
      fail=1
    fi
  done
done

hiz16_cong=$(congestion_of "$TMP/ktree400.hiz16.json")
kkoi19_cong=$(congestion_of "$TMP/ktree400.kkoi19.json")
if [[ -z "$hiz16_cong" || -z "$kkoi19_cong" ||
      "$kkoi19_cong" -ge "$hiz16_cong" ]]; then
  echo "FAIL: kkoi19 congestion ($kkoi19_cong) is not strictly below" \
       "hiz16's ($hiz16_cong) on ktree400" >&2
  fail=1
fi

# Churn cells: the acceptance loop for the dynamic subsystem. Each drives a
# 1000-step verified insert/delete stream (every mutation checked against
# the from-scratch components + MSF oracles) over a different family, and
# --validate adds a distributed-MST engine run over the final snapshot — so
# the threads 2/4 re-runs exercise the parallel engine path and the whole
# report must stay bit-identical.
CHURN_NAMES=()
CHURN_SPECS=()
churn_add() { CHURN_NAMES+=("$1"); CHURN_SPECS+=("$2"); }
churn_add churn_er300 \
  "churn:base=er:n=300,deg=6,seed=5;steps=1000,rate=0.02,seed=7"
churn_add churn_ktree300 \
  "churn:base=ktree:n=300,k=3,seed=8;steps=1000,rate=0.02,dfrac=0.4,seed=7,weights=1-64"
churn_add churn_ba300 \
  "churn:base=ba:n=300,m=3,seed=4;steps=1000,rate=0.03,seed=7,verify=sample,vperiod=32"

for i in "${!CHURN_NAMES[@]}"; do
  name=${CHURN_NAMES[$i]}
  spec=${CHURN_SPECS[$i]}
  out="$TMP/$name.churn.json"
  if ! "$LCS_RUN" --algo=churn --scenario="$spec" --seed=7 \
      --validate --no-timing --out="$out"; then
    echo "FAIL: $name exited nonzero (verification or runtime error)" >&2
    fail=1
    continue
  fi

  golden="$GOLDENS/$name.churn.json"
  if [[ "$UPDATE" == "--update" ]]; then
    cp "$out" "$golden"
  elif ! diff -u "$golden" "$out" >&2; then
    echo "FAIL: $name drifted from the committed golden" >&2
    echo "      (deliberate change? regenerate: tools/regen_goldens.sh)" >&2
    fail=1
  fi

  for threads in 2 4; do
    tout="$TMP/$name.churn.t$threads.json"
    if ! "$LCS_RUN" --algo=churn --scenario="$spec" --seed=7 \
        --validate --no-timing --threads="$threads" --parallel-threshold=0 \
        --out="$tout"; then
      echo "FAIL: $name exited nonzero at --threads $threads" >&2
      fail=1
      continue
    fi
    if ! diff -u "$out" "$tout" >&2; then
      echo "FAIL: $name not bit-identical at --threads $threads" >&2
      fail=1
    fi
  done
done

# One --sweep cell: a JSON array of per-point reports, byte-pinned and
# thread-invariant like every single-run cell.
SWEEP_ARGS=(--algo=components --scenario="er:n=100,deg=4,seed=5"
            --sweep="n=100..400:x2" --seed=7 --validate --no-timing)
out="$TMP/sweep_er.components.json"
if ! "$LCS_RUN" "${SWEEP_ARGS[@]}" --out="$out"; then
  echo "FAIL: sweep_er/components exited nonzero" >&2
  fail=1
else
  golden="$GOLDENS/sweep_er.components.json"
  if [[ "$UPDATE" == "--update" ]]; then
    cp "$out" "$golden"
  elif ! diff -u "$golden" "$out" >&2; then
    echo "FAIL: sweep_er/components drifted from the committed golden" >&2
    echo "      (deliberate change? regenerate: tools/regen_goldens.sh)" >&2
    fail=1
  fi
  for threads in 2 4; do
    tout="$TMP/sweep_er.components.t$threads.json"
    if ! "$LCS_RUN" "${SWEEP_ARGS[@]}" --threads="$threads" \
        --parallel-threshold=0 --out="$tout"; then
      echo "FAIL: sweep_er/components exited nonzero at --threads $threads" >&2
      fail=1
    elif ! diff -u "$out" "$tout" >&2; then
      echo "FAIL: sweep_er/components not bit-identical at --threads $threads" >&2
      fail=1
    fi
  done
fi

if [[ "$UPDATE" == "--update" ]]; then
  echo "goldens regenerated in $GOLDENS"
  exit 0
fi
if [[ $fail -ne 0 ]]; then
  echo "golden matrix: FAILED" >&2
  exit 1
fi
echo "golden matrix: ${#NAMES[@]} scenarios x ${#ALGOS[@]} algorithms + ${#BK_NAMES[@]} backend + ${#CHURN_NAMES[@]} churn + 1 sweep OK (threads 1/2/4 bit-identical)"
