/// \file lcs_serve.cpp
/// Persistent shortcut daemon: load once, answer many.
///
/// See src/serve/server.h for the request vocabulary and framing, and
/// src/serve/cache.h for the cache layout. The contract that makes this
/// tool honest is byte-identity: every response payload matches the stdout
/// of the equivalent one-shot `lcs_run` invocation exactly.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/check.h"

namespace {

constexpr const char* kUsage = R"(usage: lcs_serve [options]

Long-lived request server for the lcs algorithm suite. Reads one JSON
request per line from stdin (or a unix socket), answers each with a framed
response whose payload is byte-identical to the equivalent one-shot
lcs_run invocation:

    #lcs_serve id=<id> exit=<rc> bytes=<N>
    <N bytes of JSON>

Request fields mirror the lcs_run flags: algo, scenario, churn, sweep,
seed, threads, parallel_threshold, fail_rate, validate, metrics, timing,
plus an optional client-chosen id echoed in the frame. Admin requests:
{"cmd": "stats"} and {"cmd": "quit"}.

options:
  --cache-dir=DIR      persist resolved scenarios (.lcsg bundles) and
                       constructed shortcut records (.lcss) under DIR;
                       a later start over the same DIR answers repeat
                       requests from pure I/O (no generation, no
                       construction)
  --socket=PATH        serve a unix stream socket instead of stdin
  --batch=N            max buffered requests dispatched as one batch
                       (default 16)
  --parallel-requests=N  worker threads for batch dispatch (default 1;
                       0 = hardware concurrency)
  --preload=SPEC       resolve SPEC before serving (repeatable)
  --help               print this text
)";

struct Options {
  lcs::serve::ServeOptions serve;
  bool help = false;
};

bool take_value(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

int parse_int(const std::string& text, const char* flag) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  LCS_CHECK(used == text.size(),
            std::string(flag) + " expects an integer, got '" + text + "'");
  return value;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      o.help = true;
    } else if (take_value(arg, "--cache-dir", value)) {
      o.serve.cache_dir = value;
    } else if (take_value(arg, "--socket", value)) {
      o.serve.socket_path = value;
    } else if (take_value(arg, "--batch", value)) {
      o.serve.batch = parse_int(value, "--batch");
    } else if (take_value(arg, "--parallel-requests", value)) {
      o.serve.parallel_requests = parse_int(value, "--parallel-requests");
    } else if (take_value(arg, "--preload", value)) {
      o.serve.preload.push_back(value);
    } else {
      LCS_CHECK(false, "unknown option '" + std::string(arg) +
                           "' (see --help)");
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    if (o.help) {
      std::cout << kUsage;
      return 0;
    }
    lcs::serve::Server server(o.serve);
    server.preload();
    return o.serve.socket_path.empty() ? server.serve_stdin()
                                       : server.serve_unix_socket();
  } catch (const lcs::CheckFailure& e) {
    std::cerr << "lcs_serve: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "lcs_serve: internal error: " << e.what() << "\n";
    return 3;
  }
}
