/// \file lcs_lint.cpp
/// CLI for the repo's determinism, safety & architecture static-analysis
/// pass.
///
///   lcs_lint [flags] <path>...
///
///   --list-rules       print the rule table (family, fixture count,
///                      rationale) and exit
///   --json             emit the machine-readable findings document
///                      (schema lcs-lint-findings-v1) on stdout instead
///                      of the human one-line-per-finding format
///   --graph-dot=FILE   write the project include graph as Graphviz DOT
///                      to FILE ('-' = stdout)
///   --cache=FILE       incremental cache: unchanged files (by content
///                      hash) are served from FILE without re-lexing
///   --layers=FILE      layer manifest to enforce (default: auto-discover
///                      src/lint/layers.txt)
///
/// Lints every .cpp/.h under the given files/directories (recursively,
/// skipping the lint_fixtures corpus) as ONE project — the per-file rules
/// plus the include-graph rules (layering, cycles, IWYU, dead symbols) —
/// and prints one line per finding:
///
///   file:line:col: RULE: message (fix: hint)
///
/// Exit code 0 = clean, 1 = findings (including stale suppressions),
/// 2 = usage error. The rule table, rationale, and suppression syntax are
/// documented in src/lint/README.md; the same binary runs as the
/// `lcs_lint` ctest and in the static-analysis CI job, and locally via
/// tools/lint_all.sh.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: lcs_lint [--list-rules] [--json] [--graph-dot=FILE] "
               "[--cache=FILE] [--layers=FILE] <path>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  lcs::lint::Options options;
  bool json = false;
  std::string graph_dot_file;
  std::string layers_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      std::fputs(lcs::lint::format_rule_table().c_str(), stdout);
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg.rfind("--graph-dot=", 0) == 0) {
      graph_dot_file = arg.substr(12);
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      options.cache_file = arg.substr(8);
      continue;
    }
    if (arg.rfind("--layers=", 0) == 0) {
      layers_file = arg.substr(9);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lcs_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    usage(stderr);
    return 2;
  }
  // A typo'd path would otherwise scan zero files and "pass" — in CI that
  // silently disables the gate.
  for (const std::string& p : paths) {
    if (!std::filesystem::exists(p)) {
      std::fprintf(stderr, "lcs_lint: no such path '%s'\n", p.c_str());
      return 2;
    }
  }
  if (!layers_file.empty()) {
    std::ifstream in(layers_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lcs_lint: cannot read layers file '%s'\n",
                   layers_file.c_str());
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    options.layers_text = std::move(text);
  }

  const lcs::lint::LintResult result = lcs::lint::lint_paths(paths, options);

  if (!graph_dot_file.empty()) {
    if (graph_dot_file == "-") {
      std::fputs(result.graph_dot.c_str(), stdout);
    } else {
      std::ofstream out(graph_dot_file, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "lcs_lint: cannot write '%s'\n",
                     graph_dot_file.c_str());
        return 2;
      }
      out << result.graph_dot;
    }
  }

  if (json) {
    std::fputs(lcs::lint::format_findings_json(result).c_str(), stdout);
  } else {
    for (const auto& f : result.findings)
      std::printf("%s\n", lcs::lint::format_finding(f).c_str());
  }
  std::fprintf(stderr,
               "lcs_lint: %d file(s) scanned (%d lexed, %d cache hit(s)), "
               "%zu finding(s), %d suppression(s) honored\n",
               result.files_scanned, result.files_lexed, result.cache_hits,
               result.findings.size(), result.suppressions_used);
  return result.findings.empty() ? 0 : 1;
}
