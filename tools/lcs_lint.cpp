/// \file lcs_lint.cpp
/// CLI for the repo's determinism & safety static-analysis pass.
///
///   lcs_lint [--list-rules] <path>...
///
/// Lints every .cpp/.h under the given files/directories (recursively,
/// skipping the lint_fixtures corpus) and prints one line per finding:
///
///   file:line:col: RULE: message (fix: hint)
///
/// Exit code 0 = clean, 1 = findings (including stale suppressions),
/// 2 = usage error. The rule table, rationale, and suppression syntax are
/// documented in src/lint/README.md; the same binary runs as the
/// `lcs_lint` ctest and in the static-analysis CI job, and locally via
/// tools/lint_all.sh.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : lcs::lint::rule_table())
        std::printf("%-4s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: lcs_lint [--list-rules] <path>...\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lcs_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: lcs_lint [--list-rules] <path>...\n");
    return 2;
  }
  // A typo'd path would otherwise scan zero files and "pass" — in CI that
  // silently disables the gate.
  for (const std::string& p : paths) {
    if (!std::filesystem::exists(p)) {
      std::fprintf(stderr, "lcs_lint: no such path '%s'\n", p.c_str());
      return 2;
    }
  }

  const lcs::lint::LintResult result = lcs::lint::lint_paths(paths);
  for (const auto& f : result.findings)
    std::printf("%s\n", lcs::lint::format_finding(f).c_str());
  std::fprintf(stderr,
               "lcs_lint: %d file(s) scanned, %zu finding(s), %d "
               "suppression(s) honored\n",
               result.files_scanned, result.findings.size(),
               result.suppressions_used);
  return result.findings.empty() ? 0 : 1;
}
