#!/usr/bin/env bash
# Warm-start contract gate for the serve daemon's persistent caches.
#
# A warm start over a populated --cache-dir must be pure I/O: no generator
# runs, no shortcut constructions — and must still answer every request
# with bytes identical to the cold pass (which the serve_smoke gate in
# turn pins to one-shot lcs_run). The daemon's {"cmd":"stats"} counters
# make the contract mechanically checkable:
#
#   1. cold pass: fresh cache dir, every golden-matrix scenario as an
#      --algo=shortcut request; stats must show generated > 0.
#   2. warm pass: new daemon process, same dir, same requests; every
#      response byte-identical, stats must show generated == 0 AND
#      constructed == 0.
#   3. corruption pass: truncate one scenario bundle and one shortcut
#      record; a third daemon must degrade to regeneration (nonzero
#      disk_load_failures) and STILL answer with identical bytes.
#
# Usage: serve_warm_test.sh /path/to/lcs_serve /path/to/lcs_run
set -u

serve="${1:?usage: serve_warm_test.sh /path/to/lcs_serve /path/to/lcs_run}"
run="${2:?usage: serve_warm_test.sh /path/to/lcs_serve /path/to/lcs_run}"
serve=$(realpath "$serve")
run=$(realpath "$run")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
cache="$TMP/cache"
failures=0

# The golden matrix's synthetic scenarios (tools/golden_smoke.sh), served
# as shortcut constructions — the most expensive thing the daemon caches.
SPECS=(
  "grid:w=16,h=16"
  "torus:w=12,h=12"
  "er:n=300,deg=6,seed=5"
  "maze:w=16,h=16,keep=0.3,seed=9"
  "wheel:n=257,arcs=8"
  "lb:paths=8"
  "rmat:scale=8,deg=6,seed=3"
  "ba:n=300,m=3,seed=4"
  "rreg:n=256,d=4,seed=6"
  "ktree:n=300,k=3,seed=8"
)

requests="$TMP/requests.jsonl"
{
  i=0
  for spec in "${SPECS[@]}"; do
    printf '{"id":"g%d","algo":"shortcut","scenario":"%s","seed":7,"validate":true,"timing":false}\n' "$i" "$spec"
    i=$((i + 1))
  done
  printf '%s\n' '{"id":"stats","cmd":"stats"}' '{"cmd":"quit"}'
} > "$requests"

# strip_frames FILE — responses without the stats payload (which legitimately
# differs between passes) and without frame headers.
payload_of() {
  awk '
    /^#lcs_serve id=stats/ { in_stats = 1; next }
    /^#lcs_serve id=/ { in_stats = 0; print; next }
    { if (!in_stats) print }
  ' "$1"
}

stats_of() {
  awk '/^#lcs_serve id=stats/ { grab = 1; next } /^#lcs_serve/ { grab = 0 } grab' "$1"
}

counter() {  # counter FILE NAME -> value
  grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$'
}

run_pass() {  # run_pass NAME -> writes $TMP/NAME.out, $TMP/NAME.stats
  local name="$1"
  "$serve" --cache-dir="$cache" < "$requests" > "$TMP/$name.raw" 2>"$TMP/$name.err"
  local rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "FAIL $name: lcs_serve exited $rc" >&2
    cat "$TMP/$name.err" >&2
    failures=$((failures + 1))
  fi
  payload_of "$TMP/$name.raw" > "$TMP/$name.out"
  stats_of "$TMP/$name.raw" > "$TMP/$name.stats"
}

# --- cold pass -------------------------------------------------------------
run_pass cold
if [[ "$(counter "$TMP/cold.stats" generated)" -eq 0 ]]; then
  echo "FAIL cold: expected generation on a fresh cache dir" >&2
  failures=$((failures + 1))
fi

# Spot-check the cold responses against one-shot lcs_run (the full matrix
# identity is serve_smoke's job).
"$run" --algo=shortcut --scenario="${SPECS[0]}" --seed=7 --validate \
  --no-timing > "$TMP/oneshot.json" 2>/dev/null
awk '/^#lcs_serve id=g0 /{grab=1;next}/^#lcs_serve/{grab=0}grab' \
  "$TMP/cold.raw" > "$TMP/cold.g0"
if ! diff -u "$TMP/oneshot.json" "$TMP/cold.g0" >&2; then
  echo "FAIL cold: g0 payload differs from one-shot lcs_run" >&2
  failures=$((failures + 1))
fi

# --- warm pass: zero generation, zero construction, identical bytes --------
run_pass warm
if ! diff -u "$TMP/cold.out" "$TMP/warm.out" >&2; then
  echo "FAIL warm: responses differ from the cold pass" >&2
  failures=$((failures + 1))
fi
for c in generated constructed; do
  v=$(counter "$TMP/warm.stats" "$c")
  if [[ "$v" -ne 0 ]]; then
    echo "FAIL warm: $c = $v, expected 0 (warm start must be pure I/O)" >&2
    failures=$((failures + 1))
  fi
done
for c in disk_loads; do
  v=$(counter "$TMP/warm.stats" "$c")
  if [[ "$v" -eq 0 ]]; then
    echo "FAIL warm: $c = 0, expected disk traffic on a warm start" >&2
    failures=$((failures + 1))
  fi
done

# --- corruption pass: torn entries degrade, never serve wrong bytes --------
one_bundle=$(ls "$cache"/scenario-*.lcsg | head -1)
one_record=$(ls "$cache"/shortcut-*.lcss | head -1)
truncate -s 37 "$one_bundle"
truncate -s 21 "$one_record"
run_pass corrupted
if ! diff -u "$TMP/cold.out" "$TMP/corrupted.out" >&2; then
  echo "FAIL corrupted: responses differ after cache corruption" >&2
  failures=$((failures + 1))
fi
v=$(counter "$TMP/corrupted.stats" disk_load_failures)
if [[ "$v" -eq 0 ]]; then
  echo "FAIL corrupted: disk_load_failures = 0, corruption went unnoticed" >&2
  failures=$((failures + 1))
fi

# The corrupted entries were rewritten: one more pass is warm again.
run_pass rewarmed
for c in generated constructed; do
  v=$(counter "$TMP/rewarmed.stats" "$c")
  if [[ "$v" -ne 0 ]]; then
    echo "FAIL rewarmed: $c = $v, expected 0 after cache self-repair" >&2
    failures=$((failures + 1))
  fi
done

if [[ "$failures" -ne 0 ]]; then
  echo "serve_warm_test: $failures failure(s)" >&2
  exit 1
fi
echo "serve_warm_test: ${#SPECS[@]} scenarios warm-start from pure I/O, byte-identical, corruption degrades safely"
