#!/usr/bin/env bash
# Deliberately regenerate the committed golden reports in tests/goldens/.
#
# Goldens pin the byte-exact lcs_run report for every (scenario, algorithm)
# cell of the golden matrix. They are allowed to change ONLY when a PR
# deliberately changes an edge stream, the report schema, or an algorithm's
# accounting — and then the regenerated goldens must land IN THE SAME PR,
# with the diff reviewed (see "Golden regeneration policy" in
# src/scenario/README.md). Never hand-edit a golden.
#
# Usage:
#   tools/regen_goldens.sh [build-dir]     (default: ./build)
#
# Builds lcs_run in the given build directory if it is missing, then runs
# the full golden matrix in --update mode. Afterwards, review with
# `git diff tests/goldens/` and re-run the matrix (ctest -R golden_matrix)
# to confirm it is green and bit-identical at --threads 1/2/4.
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}

if [[ ! -x "$BUILD/lcs_run" ]]; then
  echo "regen_goldens: building lcs_run in $BUILD" >&2
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target lcs_run -j"$(nproc)" >/dev/null
fi

"$ROOT/tools/golden_smoke.sh" "$BUILD/lcs_run" "$ROOT/tests/goldens" --update
echo "regen_goldens: review with 'git diff $ROOT/tests/goldens' before committing"
