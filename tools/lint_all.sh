#!/usr/bin/env bash
# The one-command local static-analysis gate — the same three checks the
# CI static-analysis job runs:
#
#   1. lcs_lint over src/ tools/ tests/ (determinism & safety rules);
#   2. clang-tidy (profile in .clang-tidy) over compile_commands.json —
#      skipped with a notice when clang-tidy is not installed;
#   3. a -DLCS_WERROR=ON build (-Wall -Wextra -Wconversion -Werror) of
#      everything: library, tools, tests, benches, examples.
#
# Usage: tools/lint_all.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

# --- 1. lcs_lint -----------------------------------------------------------
if [[ ! -x "$BUILD_DIR/lcs_lint" ]]; then
  echo "lint_all: building lcs_lint in $BUILD_DIR ..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target lcs_lint >/dev/null
fi
echo "lint_all: [1/3] lcs_lint src tools tests"
LINT_CACHE="$BUILD_DIR/lcs_lint_cache.json"

# First pass populates the incremental cache (cold on a fresh build dir),
# second pass must be served entirely from it — the warm run proves the
# content-hash cache works, and its summary must report 0 files lexed.
t0=$(date +%s%N)
"$BUILD_DIR/lcs_lint" --cache="$LINT_CACHE" src tools tests || FAILED=1
t1=$(date +%s%N)
WARM_SUMMARY=$("$BUILD_DIR/lcs_lint" --cache="$LINT_CACHE" src tools tests 2>&1 >/dev/null) || FAILED=1
t2=$(date +%s%N)
echo "lint_all: lcs_lint cold $(( (t1 - t0) / 1000000 )) ms, warm $(( (t2 - t1) / 1000000 )) ms"
if [[ "$WARM_SUMMARY" != *"(0 lexed,"* ]]; then
  echo "lint_all: FAILED — warm lcs_lint run re-lexed files: $WARM_SUMMARY"
  FAILED=1
fi

# --- 2. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null  # exports compile commands
  fi
  echo "lint_all: [2/3] clang-tidy (profile: .clang-tidy)"
  # Sources only; headers are covered via HeaderFilterRegex.
  mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${TIDY_SOURCES[@]}" || FAILED=1
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}" || FAILED=1
  fi
else
  echo "lint_all: [2/3] clang-tidy not installed — skipping (CI runs it)"
fi

# --- 3. -Werror build ------------------------------------------------------
echo "lint_all: [3/3] -DLCS_WERROR=ON build (library, tools, tests, benches, examples)"
cmake -B "$BUILD_DIR-werror" -S . -DLCS_WERROR=ON >/dev/null
cmake --build "$BUILD_DIR-werror" -j"$(nproc)" || FAILED=1

if [[ "$FAILED" -ne 0 ]]; then
  echo "lint_all: FAILED"
  exit 1
fi
echo "lint_all: all gates clean"
