#!/usr/bin/env bash
# Per-family quality comparison across every registered shortcut backend.
#
# Runs `lcs_run --algo=shortcut --backend=<each>` over a pinned scenario
# subset (one representative per family in the golden matrix, seed 7,
# --no-timing) and prints one deterministic aligned table:
#
#   scenario      backend   congestion  block  dilation  rounds  messages
#
# A backend that declines a scenario (its applicability predicate — e.g.
# kkoi19 needs the ktree family's known width bound) gets a "-" row, so the
# table shape never depends on which constructions happen to apply. The
# table is a pure function of the binary: it is byte-pinned against
# tests/goldens/backend_compare.txt by the `backend_compare` ctest, and
# --threads re-runs must reproduce it bit-for-bit.
#
# Usage:
#   tools/backend_compare.sh <lcs_run-binary> [--threads=N] [--check=GOLDEN]
#
# --threads=N  forward to lcs_run (N>1 also forces --parallel-threshold=0,
#              the golden gate's always-parallel discipline)
# --check=F    diff the table against golden file F instead of printing it
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <lcs_run-binary> [--threads=N] [--check=GOLDEN]" >&2
  exit 2
fi

LCS_RUN=$(realpath "$1")
shift
THREADS=""
CHECK=""
for arg in "$@"; do
  case "$arg" in
    --threads=*) THREADS=${arg#--threads=} ;;
    --check=*) CHECK=$(realpath "${arg#--check=}") ;;
    *) echo "backend_compare.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

# One representative per scenario family, small enough to keep the whole
# table under a second, large enough that the constructions differ.
SPECS=(
  "grid:w=16,h=16"
  "er:n=300,deg=6,seed=5"
  "ba:n=300,m=3,seed=4"
  "ktree:n=300,k=3,seed=8"
  "ktree:n=400,k=4,seed=3"
)
BACKENDS=(hiz16 kkoi19 naive)

# Pull the five quality numbers out of a report, scoped to the "result"
# object so scenario-level fields can never shadow them.
extract() {
  awk '
    /"result": \{/ { inres = 1 }
    inres && /\}/ { inres = 0 }
    inres {
      if (match($0, /"congestion": [0-9]+/))
        cong = substr($0, RSTART + 14, RLENGTH - 14)
      if (match($0, /"block_parameter": [0-9]+/))
        block = substr($0, RSTART + 19, RLENGTH - 19)
      if (match($0, /"dilation_estimate": [0-9]+/))
        dil = substr($0, RSTART + 21, RLENGTH - 21)
      if (match($0, /"rounds": [0-9]+/))
        rounds = substr($0, RSTART + 10, RLENGTH - 10)
      if (match($0, /"messages": [0-9]+/))
        msgs = substr($0, RSTART + 12, RLENGTH - 12)
    }
    END { print cong, block, dil, rounds, msgs }
  ' "$1"
}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# render_table THREADS OUT — one full backend x scenario pass.
render_table() {
  local threads="$1" dest="$2"
  local extra=()
  if [[ "$threads" -gt 1 ]]; then
    extra=(--threads="$threads" --parallel-threshold=0)
  fi
  {
    printf '%-24s %-8s %10s %6s %9s %7s %9s\n' \
      scenario backend congestion block dilation rounds messages
    local spec be out errjson cong block dil rounds msgs
    for spec in "${SPECS[@]}"; do
      for be in "${BACKENDS[@]}"; do
        # A failing run leaves --out untouched and puts the JSON error
        # object on stdout, so capture stdout separately to tell
        # "inapplicable" from a real failure.
        out="$TMP/report.json"
        errjson="$TMP/stdout.json"
        if "$LCS_RUN" --algo=shortcut --scenario="$spec" --backend="$be" \
            --seed=7 --no-timing "${extra[@]}" --out="$out" \
            >"$errjson" 2>/dev/null; then
          read -r cong block dil rounds msgs < <(extract "$out")
          printf '%-24s %-8s %10s %6s %9s %7s %9s\n' \
            "$spec" "$be" "$cong" "$block" "$dil" "$rounds" "$msgs"
        elif grep -q 'not applicable' "$errjson"; then
          printf '%-24s %-8s %10s %6s %9s %7s %9s\n' \
            "$spec" "$be" - - - - -
        else
          echo "backend_compare.sh: $be on '$spec' failed unexpectedly:" >&2
          cat "$errjson" >&2
          exit 1
        fi
      done
    done
  } > "$dest"
}

if [[ -n "$CHECK" ]]; then
  # The whole table must reproduce the golden bit-for-bit at every thread
  # count (default: the golden gate's 1/2/4 discipline).
  for threads in ${THREADS:-1 2 4}; do
    render_table "$threads" "$TMP/table.txt"
    if ! diff -u "$CHECK" "$TMP/table.txt" >&2; then
      echo "backend_compare: table drifted from $CHECK at" \
           "--threads $threads" >&2
      echo "  (deliberate change? tools/backend_compare.sh <lcs_run> >" \
           "$CHECK)" >&2
      exit 1
    fi
    echo "backend_compare: table matches $(basename "$CHECK")" \
         "(threads=$threads)"
  done
else
  render_table "${THREADS:-1}" "$TMP/table.txt"
  cat "$TMP/table.txt"
fi
