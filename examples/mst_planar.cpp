/// \file mst_planar.cpp
/// The paper's headline application (Lemma 4): distributed MST on planar /
/// bounded-genus networks in Õ(D) rounds via shortcut-Boruvka, compared
/// against the no-shortcut strawman and the classical pipelined baseline.
///
/// Run on a grid (genus 0) and a genus-8 grid; verifies every result
/// against centralized Kruskal and reports round counts.
#include <iostream>

#include "congest/network.h"
#include "graph/metrics.h"
#include "graph/reference.h"
#include "mst/boruvka_intra.h"
#include "mst/boruvka_shortcut.h"
#include "mst/pipeline.h"
#include "scenario/scenario.h"
#include "tree/bfs_tree.h"
#include "util/table.h"

namespace {

void run_one(const lcs::Graph& g, const std::string& name, lcs::Table& out) {
  using namespace lcs;
  const MstResult truth = kruskal_mst(g);

  auto row = [&](const std::string& algo, const DistributedMst& mst) {
    if (mst.total_weight != truth.total_weight)
      throw std::runtime_error("MST mismatch — bug");
    out.begin_row()
        .cell(name)
        .cell(algo)
        .cell(static_cast<std::int64_t>(g.num_nodes()))
        .cell(static_cast<std::int64_t>(diameter_double_sweep(g)))
        .cell(mst.rounds)
        .cell(static_cast<std::int64_t>(mst.phases))
        .cell(static_cast<std::int64_t>(mst.total_weight));
  };

  {
    congest::Network net(g);
    const SpanningTree tree = build_bfs_tree(net, 0);
    row("shortcut-boruvka", mst_boruvka_shortcut(net, tree));
  }
  {
    congest::Network net(g);
    const SpanningTree tree = build_bfs_tree(net, 0);
    row("pipeline", mst_pipeline(net, tree));
  }
  {
    congest::Network net(g);
    const SpanningTree tree = build_bfs_tree(net, 0);
    row("intra-only", mst_boruvka_intra(net, tree));
  }
}

}  // namespace

int main() {
  using namespace lcs;
  Table out({"graph", "algorithm", "n", "D", "rounds", "phases", "weight"});

  run_one(scenario::make_scenario("grid:w=24,h=24,weights=1-100000,wseed=1")
              .graph,
          "grid-24x24", out);
  run_one(scenario::make_scenario(
              "genus:w=24,h=24,g=8,seed=7,weights=1-100000,wseed=2")
              .graph,
          "genus8-24x24", out);
  run_one(scenario::make_scenario("torus:w=20,h=20,weights=1-100000,wseed=3")
              .graph,
          "torus-20x20", out);

  out.print(std::cout);
  std::cout << "\nAll three algorithms returned the exact MST "
               "(checked against Kruskal).\n";
  return 0;
}
