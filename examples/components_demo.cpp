/// \file components_demo.cpp
/// Distributed connectivity of a *logical* subgraph over the intact
/// network — the primitive behind connectivity verification (one of the
/// Ω̃(√n + D) problems from [Das Sarma et al.] that the shortcut framework
/// accelerates on structured topologies).
///
/// Scenario: a maintenance system marks a random subset of links of a
/// planar network as failed and every switch must learn its surviving
/// island's identity. Communication may still use all physical links; only
/// the *logical* membership follows the failures.
#include <iostream>
#include <set>

#include "apps/components.h"
#include "congest/network.h"
#include "graph/reference.h"
#include "scenario/scenario.h"
#include "tree/bfs_tree.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace lcs;
  const Graph g =
      scenario::make_scenario("maze:w=24,h=24,keep=0.35,seed=7").graph;

  Table out({"failed links", "islands", "phases", "rounds", "matches oracle"});
  bool all_match = true;
  for (const double failure_rate : {0.0, 0.2, 0.4, 0.6}) {
    Rng rng(42);
    std::vector<bool> alive(static_cast<std::size_t>(g.num_edges()));
    std::size_t failed = 0;
    for (std::size_t e = 0; e < alive.size(); ++e) {
      alive[e] = !rng.next_bool(failure_rate);
      if (!alive[e]) ++failed;
    }

    congest::Network net(g);
    const SpanningTree tree = build_bfs_tree(net, 0);
    const ComponentsResult result =
        distributed_components(net, tree, alive, 99);

    // Verify against the centralized union-find oracle; a mismatch fails
    // the run (CI smoke-runs this binary).
    const auto truth = connected_components(g, alive);
    bool match = true;
    for (NodeId v = 0; match && v < g.num_nodes(); ++v)
      for (const auto& nb : g.neighbors(v))
        if ((truth[static_cast<std::size_t>(v)] ==
             truth[static_cast<std::size_t>(nb.node)]) !=
            (result.label[static_cast<std::size_t>(v)] ==
             result.label[static_cast<std::size_t>(nb.node)]))
          match = false;

    std::set<PartId> islands(result.label.begin(), result.label.end());
    out.begin_row()
        .cell(static_cast<std::uint64_t>(failed))
        .cell(static_cast<std::uint64_t>(islands.size()))
        .cell(static_cast<std::int64_t>(result.phases))
        .cell(result.rounds)
        .cell(std::string(match ? "yes" : "NO"));
    all_match = all_match && match;
  }
  out.print(std::cout);
  if (!all_match) {
    std::cout << "\nORACLE MISMATCH — distributed labels disagree with the "
                 "centralized components.\n";
    return 1;
  }
  std::cout << "\nEvery island agreed on a label using shortcut-based "
               "Boruvka over the surviving logical subgraph.\n";
  return 0;
}
