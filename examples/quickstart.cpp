/// \file quickstart.cpp
/// Five-minute tour of the library:
///   1. build a network topology (a wheel: diameter 2),
///   2. partition it into connected parts whose *induced* diameters are huge
///      (arcs of the wheel) — the exact problem from the paper's Section 1.2,
///   3. construct a tree-restricted shortcut with FindShortcut (doubling
///      mode: no parameters needed),
///   4. inspect the shortcut's quality (congestion / block parameter /
///      dilation) against the Lemma 1 bound,
///   5. run part-wise aggregation on it and compare the round cost with the
///      intra-part alternative.
#include <iostream>

#include "apps/aggregate.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "mst/intra_flood.h"
#include "scenario/scenario.h"
#include "shortcut/shortcut.h"
#include "tree/bfs_tree.h"
#include "util/table.h"

int main() {
  using namespace lcs;

  // 1 + 2. Topology and parts through the scenario registry (the same spec
  //    drives lcs_run, the benches, and CI): a wheel with 512 rim nodes +
  //    hub (diameter 2), cut into 8 rim arcs of ~64 nodes each — the hub
  //    belongs to no part, and each arc's *induced* diameter is ~64, 32x
  //    the graph diameter.
  const scenario::Scenario sc = scenario::make_scenario("wheel:n=513,arcs=8");
  const Graph& g = sc.graph;
  const Partition& parts = sc.partition;
  const NodeId n = g.num_nodes();
  validate_partition(g, parts);

  std::cout << "wheel: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " diameter=" << diameter_exact(g)
            << " | max part diameter=" << max_part_diameter(g, parts)
            << "\n\n";

  // 3. Simulate the CONGEST network, build the BFS tree, find a shortcut.
  congest::Network net(g);
  const SpanningTree tree = build_bfs_tree(net, /*root=*/n - 1);
  PartAggregator aggregator(net, tree, parts);

  const auto& stats = aggregator.construction_stats();
  std::cout << "FindShortcut (doubling): trials=" << stats.trials
            << " iterations=" << stats.iterations
            << " used (c,b)=(" << stats.used_c << "," << stats.used_b << ")"
            << " rounds=" << stats.rounds << "\n";

  // 4. Quality report (centralized measurements of the distributed result).
  const Shortcut& s = aggregator.state().shortcut;
  const std::int32_t b = block_parameter(g, parts, s);
  Table quality({"metric", "value", "paper bound"});
  quality.begin_row().cell(std::string("congestion"))
      .cell(static_cast<std::int64_t>(congestion(g, parts, s)))
      .cell(std::string("O(c log N)"));
  quality.begin_row().cell(std::string("block parameter"))
      .cell(static_cast<std::int64_t>(b))
      .cell(std::string("3b"));
  quality.begin_row().cell(std::string("dilation"))
      .cell(static_cast<std::int64_t>(dilation(g, parts, s)))
      .cell(std::string("b(2D+1) = ") +
            std::to_string(lemma1_dilation_bound(tree, b)));
  quality.print(std::cout);

  // 5. Part-wise leader election: shortcut vs intra-part flooding.
  const std::int64_t before = net.total_rounds();
  const auto leaders = aggregator.leaders();
  const std::int64_t shortcut_rounds = net.total_rounds() - before;

  const NeighborParts neighbor_parts = exchange_neighbor_parts(net, parts);
  congest::PerNode<std::uint64_t> ids(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    ids[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v);
  const std::int64_t before_intra = net.total_rounds();
  const auto flood_mins = intra_part_min_flood(net, parts, neighbor_parts, ids);
  const std::int64_t intra_rounds = net.total_rounds() - before_intra;

  std::cout << "\nleader election rounds: with shortcut = " << shortcut_rounds
            << ", intra-part flooding = " << intra_rounds << "\n";
  std::cout << "leader of part 0 (known to every member): "
            << leaders[0] << "\n";

  // Oracle check (CI smoke-runs this binary): every member must have
  // learned the true minimum id of its part, by either mechanism.
  std::vector<NodeId> truth(static_cast<std::size_t>(parts.num_parts),
                            kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    const PartId j = parts.part(v);
    if (j == kNoPart) continue;
    auto& best = truth[static_cast<std::size_t>(j)];
    if (best == kNoNode || v < best) best = v;
  }
  for (NodeId v = 0; v < n; ++v) {
    const PartId j = parts.part(v);
    if (j == kNoPart) continue;
    const auto want = truth[static_cast<std::size_t>(j)];
    if (leaders[static_cast<std::size_t>(v)] != want ||
        flood_mins[static_cast<std::size_t>(v)] !=
            static_cast<std::uint64_t>(want)) {
      std::cout << "ORACLE MISMATCH at node " << v << "\n";
      return 1;
    }
  }
  return 0;
}
