/// \file lower_bound_demo.cpp
/// Why Ω̃(√n + D) exists, and how structure escapes it (Sections 1.1–1.2).
///
/// The Peleg–Rubinovich-style graph (k paths crossed by a shallow binary
/// tree) admits no good shortcut: with the paths as parts, any T-restricted
/// shortcut pays either congestion ~k on the tree or ~k blocks along the
/// paths. A grid with the same number of nodes and a benign partition has
/// excellent shortcuts. This demo measures both with the *same* generic
/// FindShortcut machinery — the construction adapts to whatever the
/// topology allows (Appendix A).
#include <cmath>
#include <iostream>

#include "congest/network.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"
#include "tree/bfs_tree.h"
#include "util/table.h"

int main() {
  using namespace lcs;
  const NodeId k = 16;  // paths / path length; n ~ k^2

  Table out({"graph", "n", "D", "parts", "existential c (b<=4)",
             "built congestion", "built block", "construction rounds"});

  auto report = [&](const std::string& name, const Graph& g,
                    const Partition& p, NodeId root) {
    congest::Network net(g);
    const SpanningTree tree = build_bfs_tree(net, root);
    const auto existential = best_existential_for_block(g, tree, p, 4);
    const FindShortcutResult found =
        find_shortcut_doubling(net, tree, p, {});
    out.begin_row()
        .cell(name)
        .cell(static_cast<std::int64_t>(g.num_nodes()))
        .cell(static_cast<std::int64_t>(diameter_exact(g)))
        .cell(static_cast<std::int64_t>(p.num_parts))
        .cell(static_cast<std::int64_t>(existential.congestion))
        .cell(static_cast<std::int64_t>(
            congestion(g, p, found.state.shortcut)))
        .cell(static_cast<std::int64_t>(
            block_parameter(g, p, found.state.shortcut)))
        .cell(found.stats.rounds);
  };

  // The hard instance: paths as parts. Everything funnels through the tree.
  const scenario::Scenario hard =
      scenario::make_scenario("lb:paths=" + std::to_string(k));
  report("lower-bound", hard.graph, hard.partition,
         hard.graph.num_nodes() - 1);

  // The benign instance: same scale, grid with row-band parts.
  const NodeId side =
      static_cast<NodeId>(std::sqrt(hard.graph.num_nodes())) + 1;
  const scenario::Scenario grid = scenario::make_scenario(
      "grid:w=" + std::to_string(side) + ",rows=2");
  report("grid", grid.graph, grid.partition, 0);

  out.print(std::cout);
  std::cout <<
      "\nReading: on the lower-bound graph even the best shortcut needs "
      "congestion ~k=" << k << " (the Omega(sqrt n) phenomenon);\n"
      "on the grid the same machinery finds a near-ideal shortcut and "
      "communication collapses to ~D.\n";
  return 0;
}
