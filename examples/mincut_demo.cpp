/// \file mincut_demo.cpp
/// Min-cut approximation — the second application family the paper lists.
/// Estimates the global edge connectivity of several topologies by Karger
/// sampling + distributed connectivity (each connectivity test runs on
/// freshly built tree-restricted shortcuts) and compares with the exact
/// Stoer–Wagner value.
#include <iostream>

#include "apps/mincut.h"
#include "congest/network.h"
#include "graph/reference.h"
#include "scenario/scenario.h"
#include "tree/bfs_tree.h"
#include "util/table.h"

int main() {
  using namespace lcs;

  struct Row {
    std::string name;
    Graph g;
  };
  std::vector<Row> scenarios;
  scenarios.push_back({"cycle-96 (lambda=2)",
                       scenario::make_scenario("cycle:n=96").graph});
  scenarios.push_back({"grid-10x10 (lambda=2)",
                       scenario::make_scenario("grid:w=10,h=10").graph});
  scenarios.push_back({"torus-9x9 (lambda=4)",
                       scenario::make_scenario("torus:w=9,h=9").graph});
  scenarios.push_back({"dense-ER-64 (lambda~13)",
                       scenario::make_scenario("er:n=64,p=0.35,seed=11").graph});

  Table out({"graph", "exact lambda", "estimate", "levels", "rounds"});
  for (const auto& sc : scenarios) {
    congest::Network net(sc.g);
    const SpanningTree tree = build_bfs_tree(net, 0);
    const MincutEstimate est = approx_mincut(net, tree, 99);
    out.begin_row()
        .cell(sc.name)
        .cell(static_cast<std::int64_t>(stoer_wagner_mincut(sc.g)))
        .cell(static_cast<std::int64_t>(est.estimate))
        .cell(static_cast<std::int64_t>(est.levels_tested))
        .cell(est.rounds);
  }
  out.print(std::cout);
  std::cout << "\nThe estimate brackets the exact value within the "
               "O(log n) guarantee of Karger sampling.\n";
  return 0;
}
